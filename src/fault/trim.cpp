// Trim-plan construction (fault/trim.h, fault/engine.h):
//
//  * block fingerprints + repeat map for pattern-block dedup. The
//    fingerprint of a 64-pattern block hashes its pattern count and its
//    input bits MASKED to the inputs that structurally reach (a) any live
//    fault site or (b) any output in a live leader's output cone. Both the
//    activation word of a fault (a function of its site net's good value)
//    and its detection word (the classic engine's output diff, confined to
//    OutputCone(site gate) — which the FFR engine reproduces bit-exactly)
//    are functions of exactly those inputs, so blocks with equal
//    fingerprints have equal activation and detection words for every
//    fault of the run: replaying the cached words is exact, not heuristic.
//  * the early-exit prepass: per site net, the last block holding a 0 / a
//    1 (stuck-at) or a falling / rising launch-capture pair (transition,
//    with the engines' exact cross-block carry semantics), folded into a
//    per-class / per-fault last-activating-block bound. diff ⊆ activation
//    pointwise in both models, so a class past its bound contributes
//    nothing — no activation counts, no detections — to any later block.
#include <algorithm>
#include <cstdlib>
#include <map>
#include <string_view>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "fault/engine.h"
#include "fault/trim.h"

namespace gpustl::fault {

TrimOptions EffectiveTrim(const TrimOptions& requested) {
  if (const char* env = std::getenv("GPUSTL_NO_TRIM");
      env != nullptr && env[0] != '\0' && std::string_view(env) != "0") {
    return NoTrim();
  }
  return requested;
}

std::string TrimModeName(const TrimOptions& trim) {
  if (!trim.any()) return "off";
  std::string out;
  const auto add = [&out](const char* name) {
    if (!out.empty()) out += '+';
    out += name;
  };
  if (trim.dedup_blocks) add("dedup");
  if (trim.early_exit) add("early-exit");
  if (trim.warm_start) add("warm-start");
  return out;
}

namespace internal {
namespace {

using netlist::Gate;
using netlist::NetId;
using netlist::Netlist;
using netlist::PatternSet;

NetId SiteNet(const Netlist& nl, const Fault& f) {
  return f.pin == Fault::kOutputPin ? f.gate : nl.gate(f.gate).fanin[f.pin];
}

/// Marks, over the net id space, everything that matters to the run's
/// activation/detection words: the site nets themselves plus every output
/// net in the leaders' output cones.
std::vector<char> CollectSeeds(const Netlist& nl,
                               const std::vector<NetId>& site_nets,
                               const std::vector<NetId>& leader_gates) {
  std::vector<char> seed(nl.gate_count(), 0);
  for (const NetId n : site_nets) seed[n] = 1;

  const std::size_t cone_words = nl.cone_words();
  std::vector<std::uint64_t> cone_union(cone_words, 0);
  for (const NetId g : leader_gates) {
    const std::uint64_t* cone = nl.OutputCone(g);
    for (std::size_t w = 0; w < cone_words; ++w) cone_union[w] |= cone[w];
  }
  const auto& outputs = nl.outputs();
  for (std::size_t w = 0; w < cone_words; ++w) {
    for (std::uint64_t bits = cone_union[w]; bits != 0; bits &= bits - 1) {
      const std::size_t k = w * 64 + static_cast<std::size_t>(LowestSetBit(bits));
      if (k < outputs.size()) seed[outputs[k]] = 1;
    }
  }
  return seed;
}

/// Backward structural closure from the seeds over gate fanins, projected
/// onto the primary inputs: a bitmask (words_per_pattern words, input-index
/// space) of the inputs any seed net depends on. Forcing nets (the faulty
/// machine) only REMOVES input dependencies, so the mask bounds the faulty
/// outputs' support as well.
std::vector<std::uint64_t> RelevantInputMask(const Netlist& nl,
                                             std::vector<char> reached,
                                             std::size_t mask_words) {
  std::vector<NetId> stack;
  for (NetId n = 0; n < static_cast<NetId>(nl.gate_count()); ++n) {
    if (reached[n]) stack.push_back(n);
  }
  while (!stack.empty()) {
    const NetId n = stack.back();
    stack.pop_back();
    const Gate& g = nl.gate(n);
    for (int i = 0; i < g.fanin_count(); ++i) {
      const NetId f = g.fanin[i];
      if (!reached[f]) {
        reached[f] = 1;
        stack.push_back(f);
      }
    }
  }
  std::vector<std::uint64_t> mask(mask_words, 0);
  const auto& inputs = nl.inputs();
  for (std::size_t j = 0; j < inputs.size(); ++j) {
    if (reached[inputs[j]]) mask[j / 64] |= 1ull << (j % 64);
  }
  return mask;
}

/// Fingerprints every 64-pattern block over the masked input bits and
/// fills repeat_of / has_repeat.
void FillRepeats(const PatternSet& patterns,
                 const std::vector<std::uint64_t>& mask, TrimPlan& tp) {
  const std::size_t num_blocks = (patterns.size() + 63) / 64;
  tp.repeat_of.resize(num_blocks);
  tp.has_repeat.assign(num_blocks, 0);
  const std::size_t words = patterns.words_per_pattern();
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint32_t> first_seen;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const std::size_t begin = b * 64;
    const std::size_t end = std::min(patterns.size(), begin + 64);
    Hasher128 h;
    h.AddU64(end - begin);
    for (std::size_t p = begin; p < end; ++p) {
      const std::uint64_t* row = patterns.Row(p);
      for (std::size_t w = 0; w < words; ++w) h.AddU64(row[w] & mask[w]);
    }
    const Hash128 fp = h.Finish();
    const auto [it, inserted] =
        first_seen.emplace(std::make_pair(fp.lo, fp.hi),
                           static_cast<std::uint32_t>(b));
    tp.repeat_of[b] = it->second;
    if (!inserted) tp.has_repeat[it->second] = 1;
  }
}

std::uint64_t ValidMask(int count) {
  return count >= 64 ? ~0ull : ((1ull << count) - 1);
}

}  // namespace

TrimPlan BuildStuckAtTrimPlan(const Netlist& nl, const PatternSet& patterns,
                              const std::vector<Fault>& faults,
                              const SimPlan& plan, GoodBlockCache& good_blocks,
                              const FaultSimOptions& options) {
  TrimPlan tp;
  tp.dedup = options.trim.dedup_blocks;
  tp.early_exit = options.trim.early_exit;
  if (!tp.dedup && !tp.early_exit) return tp;

  // Site nets of every simulated member; leader gates for the cone union.
  std::vector<NetId> site_nets;
  site_nets.reserve(plan.members.size());
  std::vector<NetId> leader_gates;
  leader_gates.reserve(plan.num_classes());
  for (std::size_t c = 0; c < plan.num_classes(); ++c) {
    leader_gates.push_back(faults[plan.members[plan.offsets[c]]].gate);
    for (std::uint32_t mi = plan.offsets[c]; mi < plan.offsets[c + 1]; ++mi) {
      site_nets.push_back(SiteNet(nl, faults[plan.members[mi]]));
    }
  }

  if (tp.dedup) {
    FillRepeats(patterns,
                RelevantInputMask(nl, CollectSeeds(nl, site_nets, leader_gates),
                                  patterns.words_per_pattern()),
                tp);
  }

  if (tp.early_exit) {
    const std::size_t num_blocks = (patterns.size() + 63) / 64;
    tp.last_act.assign(plan.num_classes(), -1);
    // Distinct site nets (a net may host several faults).
    std::vector<char> is_site(nl.gate_count(), 0);
    std::vector<NetId> sites;
    for (const NetId n : site_nets) {
      if (!is_site[n]) {
        is_site[n] = 1;
        sites.push_back(n);
      }
    }
    std::vector<std::int64_t> last_zero(nl.gate_count(), -1);
    std::vector<std::int64_t> last_one(nl.gate_count(), -1);
    for (std::size_t b = 0; b < num_blocks; ++b) {
      if (options.cancel != nullptr && options.cancel->Expired()) {
        // Disarm rather than return a partial table; the engine's own
        // poll aborts the run cleanly right after.
        tp.early_exit = false;
        return tp;
      }
      // With dedup on, repeated blocks share the first occurrence's good
      // values — same contents, evaluated once.
      const GoodBlockCache::Block& blk =
          good_blocks.Get(tp.dedup ? tp.repeat_of[b] : b);
      const std::uint64_t valid = ValidMask(blk.count);
      for (const NetId n : sites) {
        const std::uint64_t v = blk.values[n];
        if ((~v) & valid) last_zero[n] = static_cast<std::int64_t>(b);
        if (v & valid) last_one[n] = static_cast<std::int64_t>(b);
      }
    }
    for (std::size_t c = 0; c < plan.num_classes(); ++c) {
      std::int64_t last = -1;
      for (std::uint32_t mi = plan.offsets[c]; mi < plan.offsets[c + 1];
           ++mi) {
        const Fault& f = faults[plan.members[mi]];
        const NetId n = SiteNet(nl, f);
        // sa1 activates where the good value is 0, sa0 where it is 1.
        last = std::max(last, f.sa1 ? last_zero[n] : last_one[n]);
      }
      tp.last_act[c] = last;
    }
  }
  return tp;
}

TrimPlan BuildTransitionTrimPlan(const Netlist& nl, const PatternSet& patterns,
                                 const std::vector<TransitionFault>& faults,
                                 const std::vector<std::uint32_t>& live,
                                 GoodBlockCache& good_blocks,
                                 const FaultSimOptions& options) {
  TrimPlan tp;
  tp.dedup = options.trim.dedup_blocks;
  tp.early_exit = options.trim.early_exit;
  if (!tp.dedup && !tp.early_exit) return tp;

  std::vector<NetId> site_nets;
  site_nets.reserve(live.size());
  std::vector<NetId> fault_gates;
  fault_gates.reserve(live.size());
  for (const std::uint32_t fi : live) {
    site_nets.push_back(SiteNet(nl, faults[fi]));
    fault_gates.push_back(faults[fi].gate);
  }

  if (tp.dedup) {
    // NOTE the carry seam: a repeated block's activation word still
    // depends on the site value carried in from the previous block. The
    // engines guard every replay with a per-fault carry-in comparison and
    // recompute on mismatch, so the fingerprint itself stays purely
    // per-block.
    FillRepeats(patterns,
                RelevantInputMask(nl, CollectSeeds(nl, site_nets, fault_gates),
                                  patterns.words_per_pattern()),
                tp);
  }

  if (tp.early_exit) {
    const std::size_t num_blocks = (patterns.size() + 63) / 64;
    tp.last_act.assign(faults.size(), -1);
    std::vector<char> is_site(nl.gate_count(), 0);
    std::vector<NetId> sites;
    for (const NetId n : site_nets) {
      if (!is_site[n]) {
        is_site[n] = 1;
        sites.push_back(n);
      }
    }
    // Last block with a rising / falling launch-capture pair per site net.
    // Pattern 0 has no launch vector; the engines model that as a carry-in
    // equal to the capture-side stuck value (sa1 → 0? no: prev = !init),
    // which suppresses pattern 0 exactly when the polarity matches — so
    // block 0 uses carry 1 for rises (STR can't fire at pattern 0) and
    // carry 0 for falls (STF can't either).
    std::vector<std::int64_t> last_rise(nl.gate_count(), -1);
    std::vector<std::int64_t> last_fall(nl.gate_count(), -1);
    std::vector<char> prev_bit(nl.gate_count(), 0);
    for (std::size_t b = 0; b < num_blocks; ++b) {
      if (options.cancel != nullptr && options.cancel->Expired()) {
        tp.early_exit = false;
        return tp;
      }
      const GoodBlockCache::Block& blk =
          good_blocks.Get(tp.dedup ? tp.repeat_of[b] : b);
      const int count = blk.count;
      const std::uint64_t valid = ValidMask(count);
      for (const NetId n : sites) {
        const std::uint64_t v = blk.values[n];
        const std::uint64_t carry_rise =
            b == 0 ? 1 : static_cast<std::uint64_t>(prev_bit[n]);
        const std::uint64_t carry_fall =
            b == 0 ? 0 : static_cast<std::uint64_t>(prev_bit[n]);
        const std::uint64_t rise = v & ~((v << 1) | carry_rise) & valid;
        const std::uint64_t fall = ~v & ((v << 1) | carry_fall) & valid;
        if (rise != 0) last_rise[n] = static_cast<std::int64_t>(b);
        if (fall != 0) last_fall[n] = static_cast<std::int64_t>(b);
        prev_bit[n] = static_cast<char>((v >> (count - 1)) & 1);
      }
    }
    for (const std::uint32_t fi : live) {
      const TransitionFault& f = faults[fi];
      const NetId n = SiteNet(nl, f);
      // sa1 = slow-to-fall (launch 1, capture 0); sa0 = slow-to-rise.
      tp.last_act[fi] = f.sa1 ? last_fall[n] : last_rise[n];
    }
  }
  return tp;
}

}  // namespace internal
}  // namespace gpustl::fault
