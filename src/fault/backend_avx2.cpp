// The AVX2 backend: the 4-lane engine compiled with -mavx2 (see
// src/fault/CMakeLists.txt — the flag is per-source, so the rest of the
// library stays portable). Every Wide<4> bundle op lowers to one 256-bit
// vector instruction. The translation unit is only added to the build when
// the toolchain accepts the flag; the guard keeps a stray unconditional
// compile from emitting AVX2 code into a portable binary.
#if defined(GPUSTL_HAVE_AVX2)

#include "fault/engine_wide.h"

namespace gpustl::fault::internal {

FaultSimResult RunStuckAtAvx2(const StuckAtRun& run) {
  return RunStuckAtWideT<4>(run);
}

FaultSimResult RunTransitionAvx2(const TransitionRun& run) {
  return RunTransitionWideT<4>(run);
}

}  // namespace gpustl::fault::internal

#endif  // GPUSTL_HAVE_AVX2
