#include "fault/parallel.h"

#include <exception>
#include <string>
#include <thread>

#include "common/chaos.h"
#include "common/error.h"

namespace gpustl::fault {

GoodBlockCache::GoodBlockCache(const netlist::Netlist& nl,
                               const netlist::PatternSet& patterns)
    : sim_(nl), patterns_(&patterns) {}

const GoodBlockCache::Block& GoodBlockCache::Get(std::size_t index) {
  const std::lock_guard<std::mutex> lock(mu_);
  while (blocks_.size() <= index) {
    Block b;
    b.count = sim_.LoadBlock(*patterns_, blocks_.size() * 64);
    if (b.count > 0) {
      sim_.Eval();
      b.values = sim_.values();
    }
    blocks_.push_back(std::move(b));
  }
  return blocks_[index];
}

int ResolveNumThreads(int requested, std::size_t work_items) {
  GPUSTL_ASSERT(requested >= 0, "num_threads must be >= 0");
  std::size_t n = requested == 0
                      ? std::max(1u, std::thread::hardware_concurrency())
                      : static_cast<std::size_t>(requested);
  if (n > work_items) n = work_items;
  return n == 0 ? 1 : static_cast<int>(n);
}

std::vector<std::vector<std::uint32_t>> StrideShards(
    const std::vector<std::uint32_t>& live, int shards) {
  GPUSTL_ASSERT(shards >= 1, "shard count must be positive");
  std::vector<std::vector<std::uint32_t>> out(shards);
  const std::size_t per_shard = live.size() / shards + 1;
  for (auto& shard : out) shard.reserve(per_shard);
  for (std::size_t i = 0; i < live.size(); ++i) {
    out[i % shards].push_back(live[i]);
  }
  return out;
}

void RunOnShards(int shards, const std::function<void(int)>& kernel) {
  // Chaos worker-throw decisions are drawn HERE, on the calling thread,
  // one per shard, before any worker spawns: drawing inside the workers
  // would make the injection schedule depend on thread interleaving and
  // break same-seed reproducibility.
  std::vector<char> inject(shards, 0);
  if (chaos::Armed()) {
    for (int t = 0; t < shards; ++t) {
      inject[t] = chaos::Fail(chaos::Site::kWorkerThrow) ? 1 : 0;
    }
  }

  std::vector<std::exception_ptr> errors(shards);
  auto guarded = [&](int t) {
    try {
      if (inject[t] != 0) {
        throw Error("chaos: injected worker failure in shard " +
                    std::to_string(t));
      }
      kernel(t);
    } catch (...) {
      errors[t] = std::current_exception();
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(shards - 1);
  for (int t = 1; t < shards; ++t) workers.emplace_back(guarded, t);
  guarded(0);
  for (std::thread& w : workers) w.join();

  // Aggregate after the join: one failed shard rethrows its original
  // exception (the type carries the error classification); several are
  // folded into one Error naming every failed shard — previously only the
  // first was reported and the rest vanished.
  std::vector<int> failed;
  for (int t = 0; t < shards; ++t) {
    if (errors[t]) failed.push_back(t);
  }
  if (failed.empty()) return;
  if (failed.size() == 1) std::rethrow_exception(errors[failed[0]]);

  std::string msg = "parallel: " + std::to_string(failed.size()) + " of " +
                    std::to_string(shards) + " shards failed:";
  for (const int t : failed) {
    msg += "\n  shard " + std::to_string(t) + ": ";
    try {
      std::rethrow_exception(errors[t]);
    } catch (const std::exception& e) {
      msg += e.what();
    } catch (...) {
      msg += "unknown exception";
    }
  }
  throw Error(msg);
}

FaultSimResult InitFaultSimResult(std::size_t num_faults,
                                  std::size_t num_patterns) {
  FaultSimResult result;
  result.first_detect.assign(num_faults, FaultSimResult::kNotDetected);
  result.detects_per_pattern.assign(num_patterns, 0);
  result.activates_per_pattern.assign(num_patterns, 0);
  result.detected_mask.Resize(num_faults, false);
  return result;
}

void MergeShardResults(const std::vector<FaultSimResult>& shards,
                       FaultSimResult& out) {
  for (const FaultSimResult& shard : shards) {
    out.num_detected += shard.num_detected;
    out.detected_mask |= shard.detected_mask;
    for (std::size_t fi = 0; fi < out.first_detect.size(); ++fi) {
      if (shard.first_detect[fi] != FaultSimResult::kNotDetected) {
        out.first_detect[fi] = shard.first_detect[fi];
      }
    }
    for (std::size_t p = 0; p < out.detects_per_pattern.size(); ++p) {
      out.detects_per_pattern[p] += shard.detects_per_pattern[p];
      out.activates_per_pattern[p] += shard.activates_per_pattern[p];
    }
  }
}

}  // namespace gpustl::fault
