#include "fault/parallel.h"

#include <exception>
#include <string>
#include <thread>

#include "common/chaos.h"
#include "common/error.h"

namespace gpustl::fault {

GoodBlockCache::GoodBlockCache(const netlist::Netlist& nl,
                               const netlist::PatternSet& patterns)
    : nl_(&nl), patterns_(&patterns) {
  const std::size_t num_blocks = (patterns.size() + 63) / 64;
  blocks_.resize(num_blocks);
  if (num_blocks > 0) {
    done_ = std::make_unique<std::atomic<char>[]>(num_blocks);
    for (std::size_t i = 0; i < num_blocks; ++i) {
      done_[i].store(0, std::memory_order_relaxed);
    }
  }
}

const GoodBlockCache::Block& GoodBlockCache::Get(std::size_t index) {
  // Probes past the pattern set (the wide transpose reads L sub-blocks at
  // a time) see a shared empty block, exactly like the old grow-past-the-
  // end behaviour.
  static const Block kPastTheEnd;
  if (index >= blocks_.size()) return kPastTheEnd;

  std::atomic<char>& done = done_[index];
  if (done.load(std::memory_order_acquire) == 0) {
    Stripe& stripe = stripes_[index % kStripes];
    const std::lock_guard<std::mutex> lock(stripe.mu);
    if (done.load(std::memory_order_relaxed) == 0) {
      if (stripe.sim == nullptr) {
        stripe.sim = std::make_unique<netlist::BitSimulator>(*nl_);
      }
      Block& b = blocks_[index];
      b.count = stripe.sim->LoadBlock(*patterns_, index * 64);
      if (b.count > 0) {
        stripe.sim->Eval();
        b.values = stripe.sim->values();
      }
      done.store(1, std::memory_order_release);
    }
  }
  return blocks_[index];
}

bool StemObsCache::Lookup(std::size_t block, std::uint32_t stem,
                          std::uint64_t* out) {
  Stripe& stripe = stripes_[block % kStripes];
  const std::lock_guard<std::mutex> lock(stripe.mu);
  const auto it = stripe.words.find(Key(block, stem));
  if (it == stripe.words.end()) return false;
  *out = it->second;
  return true;
}

void StemObsCache::Store(std::size_t block, std::uint32_t stem,
                         std::uint64_t word) {
  Stripe& stripe = stripes_[block % kStripes];
  const std::lock_guard<std::mutex> lock(stripe.mu);
  stripe.words.emplace(Key(block, stem), word);
}

WarmStartCache::Shared WarmStartCache::Acquire(
    const netlist::Netlist& nl, const netlist::PatternSet& patterns,
    TrimCounters* counters) {
  // Content fingerprint over everything that determines the cached values.
  // Hashed here (not via store/fingerprint.h) because the fault library
  // sits below the store in the layering. The cc stamps are deliberately
  // excluded: good values and stem observability depend on the pattern
  // BITS only.
  Hasher128 h;
  h.AddHash(nl.fingerprint());
  h.AddU64(patterns.size());
  h.AddU64(static_cast<std::uint64_t>(patterns.width()));
  const std::size_t words = patterns.words_per_pattern();
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    h.AddBytes(patterns.Row(p), words * sizeof(std::uint64_t));
  }
  const Hash128 key = h.Finish();

  const std::lock_guard<std::mutex> lock(mu_);
  for (Entry& e : entries_) {
    if (e.key == key) {
      e.stamp = ++next_stamp_;
      if (counters != nullptr) {
        counters->warm_good_hits.fetch_add(1, std::memory_order_relaxed);
      }
      return e.shared;
    }
  }
  if (entries_.size() >= max_entries_) {
    std::size_t oldest = 0;
    for (std::size_t i = 1; i < entries_.size(); ++i) {
      if (entries_[i].stamp < entries_[oldest].stamp) oldest = i;
    }
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(oldest));
  }
  Entry e;
  e.key = key;
  e.shared.good = std::make_shared<GoodBlockCache>(nl, patterns);
  e.shared.stem_obs = std::make_shared<StemObsCache>();
  e.stamp = ++next_stamp_;
  entries_.push_back(e);
  return entries_.back().shared;
}

int ResolveNumThreads(int requested, std::size_t work_items) {
  GPUSTL_ASSERT(requested >= 0, "num_threads must be >= 0");
  std::size_t n = requested == 0
                      ? std::max(1u, std::thread::hardware_concurrency())
                      : static_cast<std::size_t>(requested);
  if (n > work_items) n = work_items;
  return n == 0 ? 1 : static_cast<int>(n);
}

std::vector<std::vector<std::uint32_t>> StrideShards(
    const std::vector<std::uint32_t>& live, int shards) {
  GPUSTL_ASSERT(shards >= 1, "shard count must be positive");
  std::vector<std::vector<std::uint32_t>> out(shards);
  const std::size_t per_shard = live.size() / shards + 1;
  for (auto& shard : out) shard.reserve(per_shard);
  for (std::size_t i = 0; i < live.size(); ++i) {
    out[i % shards].push_back(live[i]);
  }
  return out;
}

void RunOnShards(int shards, const std::function<void(int)>& kernel) {
  // Chaos worker-throw decisions are drawn HERE, on the calling thread,
  // one per shard, before any worker spawns: drawing inside the workers
  // would make the injection schedule depend on thread interleaving and
  // break same-seed reproducibility.
  std::vector<char> inject(shards, 0);
  if (chaos::Armed()) {
    for (int t = 0; t < shards; ++t) {
      inject[t] = chaos::Fail(chaos::Site::kWorkerThrow) ? 1 : 0;
    }
  }

  std::vector<std::exception_ptr> errors(shards);
  auto guarded = [&](int t) {
    try {
      if (inject[t] != 0) {
        throw Error("chaos: injected worker failure in shard " +
                    std::to_string(t));
      }
      kernel(t);
    } catch (...) {
      errors[t] = std::current_exception();
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(shards - 1);
  for (int t = 1; t < shards; ++t) workers.emplace_back(guarded, t);
  guarded(0);
  for (std::thread& w : workers) w.join();

  // Aggregate after the join: one failed shard rethrows its original
  // exception (the type carries the error classification); several are
  // folded into one Error naming every failed shard — previously only the
  // first was reported and the rest vanished.
  std::vector<int> failed;
  for (int t = 0; t < shards; ++t) {
    if (errors[t]) failed.push_back(t);
  }
  if (failed.empty()) return;
  if (failed.size() == 1) std::rethrow_exception(errors[failed[0]]);

  std::string msg = "parallel: " + std::to_string(failed.size()) + " of " +
                    std::to_string(shards) + " shards failed:";
  for (const int t : failed) {
    msg += "\n  shard " + std::to_string(t) + ": ";
    try {
      std::rethrow_exception(errors[t]);
    } catch (const std::exception& e) {
      msg += e.what();
    } catch (...) {
      msg += "unknown exception";
    }
  }
  throw Error(msg);
}

FaultSimResult InitFaultSimResult(std::size_t num_faults,
                                  std::size_t num_patterns) {
  FaultSimResult result;
  result.first_detect.assign(num_faults, FaultSimResult::kNotDetected);
  result.detects_per_pattern.assign(num_patterns, 0);
  result.activates_per_pattern.assign(num_patterns, 0);
  result.detected_mask.Resize(num_faults, false);
  return result;
}

void MergeShardResults(const std::vector<FaultSimResult>& shards,
                       FaultSimResult& out) {
  for (const FaultSimResult& shard : shards) {
    out.num_detected += shard.num_detected;
    out.detected_mask |= shard.detected_mask;
    for (std::size_t fi = 0; fi < out.first_detect.size(); ++fi) {
      if (shard.first_detect[fi] != FaultSimResult::kNotDetected) {
        out.first_detect[fi] = shard.first_detect[fi];
      }
    }
    for (std::size_t p = 0; p < out.detects_per_pattern.size(); ++p) {
      out.detects_per_pattern[p] += shard.detects_per_pattern[p];
      out.activates_per_pattern[p] += shard.activates_per_pattern[p];
    }
  }
}

}  // namespace gpustl::fault
