// Fault-parallel execution support for the PPSFP simulators.
//
// Both RunFaultSim and RunTransitionFaultSim parallelize the same way: the
// live work list — fault classes, or whole fanout-free regions when the
// FFR-clustered engine is on (a stem propagation is shared by every class
// of a region, so the region is the indivisible unit) — is sharded across
// a small worker pool, each worker runs the unmodified serial PPSFP loop
// over its shard with private propagation scratch (good-machine blocks are
// shared read-only through GoodBlockCache), and a deterministic merge
// reconstructs the serial report. The merge is exact — not approximately
// equal — because the serial loop's accounting is per-fault independent:
//
//  * `first_detect[f]` and `detected_mask[f]` depend only on fault f's own
//    propagation history;
//  * dropping fault f (after its first detection) changes only fault f's
//    contribution to later blocks, never another fault's;
//  * `detects_per_pattern` / `activates_per_pattern` are sums of per-fault
//    indicator counts, and integer addition is order-independent.
//
// Summing shard histograms in (pattern, fault-id) order therefore replays
// the serial drop-ordered accounting bit-for-bit, for any shard count and
// any thread interleaving. The differential suite in
// tests/test_faultsim_parallel.cpp locks this equivalence down.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "fault/faultsim.h"
#include "netlist/logicsim.h"
#include "netlist/patterns.h"

namespace gpustl::fault {

/// Shared good-machine state for one fault-simulation run. The good values
/// of each 64-pattern block are a pure function of (netlist, patterns), so
/// they are simulated once — lazily, in block order — and shared read-only
/// by every shard; before this cache each worker owned a BitSimulator and
/// re-evaluated every block, an O(threads x) redundancy. Laziness matters:
/// with fault dropping a run can finish before the pattern set is
/// exhausted, and blocks nobody asks for are never simulated.
class GoodBlockCache {
 public:
  GoodBlockCache(const netlist::Netlist& nl,
                 const netlist::PatternSet& patterns);

  struct Block {
    int count = 0;  // patterns in this block (0 = past the end)
    std::vector<std::uint64_t> values;  // good word per net
  };

  /// Block `index` (patterns [64*index, 64*index + count)). The first
  /// caller simulates it; later callers get the cached block. Thread-safe:
  /// the mutex hand-off orders every write before every cross-thread read,
  /// and a returned block is immutable (the deque grows without moving
  /// settled elements).
  const Block& Get(std::size_t index);

 private:
  std::mutex mu_;
  netlist::BitSimulator sim_;
  const netlist::PatternSet* patterns_;
  std::deque<Block> blocks_;
};

/// Resolves a FaultSimOptions::num_threads request against the amount of
/// shardable work: 0 = std::thread::hardware_concurrency(), otherwise the
/// requested count, clamped to [1, work_items].
int ResolveNumThreads(int requested, std::size_t work_items);

/// Partitions `live` (ascending work-item ids: fault classes or FFR
/// groups) into `shards` strided sub-lists: shard t owns live[t],
/// live[t + shards], ... Striding balances load when item difficulty
/// correlates with netlist position, and keeps every shard list in
/// ascending id order (the serial iteration order).
std::vector<std::vector<std::uint32_t>> StrideShards(
    const std::vector<std::uint32_t>& live, int shards);

/// Runs `kernel(shard_index)` once per shard on `shards` worker threads
/// (shard 0 runs on the calling thread). After all workers join, a single
/// failed shard rethrows its original exception (type intact, so the
/// campaign's error classification still sees it); multiple failures are
/// aggregated into one Error listing every failed shard index and message
/// — no shard's failure is ever silently dropped. The chaos site
/// `worker-throw` (common/chaos.h) is pre-drawn per shard on the calling
/// thread before workers spawn, keeping the injection schedule independent
/// of thread interleaving.
void RunOnShards(int shards, const std::function<void(int)>& kernel);

/// Throws DeadlineError when `options.cancel` is armed and expired. The
/// engines call this after their workers join (and after the serial loop):
/// workers return early with partial shards on expiry, and this turns the
/// partial state into a clean abort instead of a wrong report.
inline void AbortIfCancelled(const FaultSimOptions& options) {
  if (options.cancel != nullptr && options.cancel->Expired()) {
    throw DeadlineError(options.cancel->cancel_requested()
                            ? "fault sim cancelled"
                            : "fault sim aborted: stage deadline exceeded");
  }
}

/// An empty report with first_detect / per-pattern histograms / mask sized
/// for `num_faults` x `num_patterns`.
FaultSimResult InitFaultSimResult(std::size_t num_faults,
                                  std::size_t num_patterns);

/// Deterministic sharded merge (see the file comment for why this equals
/// the serial result exactly): shard fault ids are disjoint, so
/// first_detect / detected_mask scatter without conflicts and the
/// per-pattern histograms sum.
void MergeShardResults(const std::vector<FaultSimResult>& shards,
                       FaultSimResult& out);

}  // namespace gpustl::fault
