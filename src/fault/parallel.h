// Fault-parallel execution support for the PPSFP simulators.
//
// Both RunFaultSim and RunTransitionFaultSim parallelize the same way: the
// live work list — fault classes, or whole fanout-free regions when the
// FFR-clustered engine is on (a stem propagation is shared by every class
// of a region, so the region is the indivisible unit) — is sharded across
// a small worker pool, each worker runs the unmodified serial PPSFP loop
// over its shard with private propagation scratch (good-machine blocks are
// shared read-only through GoodBlockCache), and a deterministic merge
// reconstructs the serial report. The merge is exact — not approximately
// equal — because the serial loop's accounting is per-fault independent:
//
//  * `first_detect[f]` and `detected_mask[f]` depend only on fault f's own
//    propagation history;
//  * dropping fault f (after its first detection) changes only fault f's
//    contribution to later blocks, never another fault's;
//  * `detects_per_pattern` / `activates_per_pattern` are sums of per-fault
//    indicator counts, and integer addition is order-independent.
//
// Summing shard histograms in (pattern, fault-id) order therefore replays
// the serial drop-ordered accounting bit-for-bit, for any shard count and
// any thread interleaving. The differential suite in
// tests/test_faultsim_parallel.cpp locks this equivalence down.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "fault/faultsim.h"
#include "netlist/logicsim.h"
#include "netlist/patterns.h"

namespace gpustl::fault {

/// Shared good-machine state for fault-simulation runs. The good values of
/// each 64-pattern block are a pure function of (netlist, patterns), so
/// they are simulated once — lazily, on first demand — and shared
/// read-only by every shard (and, under warm-start, by every run of the
/// same inputs through a WarmStartCache). Laziness matters: with fault
/// dropping a run can finish before the pattern set is exhausted, and
/// blocks nobody asks for are never simulated.
///
/// Population is contention-friendly: the block table is pre-sized (never
/// reallocates), each block publishes through its own acquire/release flag,
/// and building serializes only within one of kStripes lock stripes — wide
/// backends warming the same cache from many shards no longer funnel
/// through a single mutex. Block content stays deterministic regardless of
/// arrival order: BitSimulator::LoadBlock is random-access by pattern
/// index, so block i's values never depend on which blocks built first.
class GoodBlockCache {
 public:
  GoodBlockCache(const netlist::Netlist& nl,
                 const netlist::PatternSet& patterns);

  struct Block {
    int count = 0;  // patterns in this block (0 = past the end)
    std::vector<std::uint64_t> values;  // good word per net
  };

  /// Block `index` (patterns [64*index, 64*index + count)). The first
  /// caller simulates it; later callers get the cached block. Past the end
  /// of the pattern set an empty block (count 0) is returned. Thread-safe;
  /// a returned block is immutable.
  const Block& Get(std::size_t index);

  /// ceil(patterns / 64): blocks with at least one pattern.
  std::size_t num_blocks() const { return blocks_.size(); }

 private:
  static constexpr std::size_t kStripes = 8;
  struct Stripe {
    std::mutex mu;
    // One lazily-built simulator per stripe: cheaper than per-block
    // construction, no sharing across stripes.
    std::unique_ptr<netlist::BitSimulator> sim;
  };

  const netlist::Netlist* nl_;
  const netlist::PatternSet* patterns_;
  std::vector<Block> blocks_;  // pre-sized; elements never move
  std::unique_ptr<std::atomic<char>[]> done_;  // per-block publication flag
  Stripe stripes_[kStripes];
};

/// Cross-run cache of per-FFR stem-observability words, shared through a
/// WarmStartCache entry (one instance per (netlist, patterns) pair). The
/// word for (block, stem) — which patterns of the block observe a stem
/// flip at the module outputs — is independent of the fault list, the skip
/// mask, dropping and the cone toggle (a stem propagation touches exactly
/// the stem's output cone), so it can be stored on first computation and
/// reused by any later run over the same patterns. Striped like
/// GoodBlockCache; values for one key are deterministic, so double-stores
/// are idempotent.
class StemObsCache {
 public:
  /// True and *out filled when (block, stem) is cached.
  bool Lookup(std::size_t block, std::uint32_t stem, std::uint64_t* out);
  void Store(std::size_t block, std::uint32_t stem, std::uint64_t word);

 private:
  static constexpr std::size_t kStripes = 8;
  struct Stripe {
    std::mutex mu;
    std::unordered_map<std::uint64_t, std::uint64_t> words;
  };
  static std::uint64_t Key(std::size_t block, std::uint32_t stem) {
    return (static_cast<std::uint64_t>(block) << 32) | stem;
  }
  Stripe stripes_[kStripes];
};

/// Cross-run warm-start state (TrimOptions::warm_start): good-machine
/// blocks and stem-observability words keyed by the (netlist, patterns)
/// content fingerprint. A campaign's compactor owns one of these per
/// module; the four fault simulations inside one CompactPtp (stage 3,
/// validation, and the two standalone measurements) hit it pairwise, and
/// runs across PTPs hit it whenever a pattern set recurs. Entries are a
/// small LRU (a CompactPtp juggles two pattern sets; older PTPs' patterns
/// rarely return). Thread-safe; the returned shared state does its own
/// locking.
class WarmStartCache {
 public:
  /// `max_entries` bounds the LRU. The default suits one campaign (a
  /// CompactPtp juggles two live pattern sets); a multi-tenant service
  /// sharing one cache across concurrent campaigns passes a larger bound.
  explicit WarmStartCache(std::size_t max_entries = 4)
      : max_entries_(max_entries == 0 ? 1 : max_entries) {}

  struct Shared {
    std::shared_ptr<GoodBlockCache> good;
    std::shared_ptr<StemObsCache> stem_obs;
  };

  /// The shared state for (nl, patterns), created on first sight. A
  /// returned Shared keeps the entry alive independent of later eviction.
  /// `counters` (nullable) gets warm_good_hits bumped on a hit.
  Shared Acquire(const netlist::Netlist& nl,
                 const netlist::PatternSet& patterns, TrimCounters* counters);

 private:
  struct Entry {
    Hash128 key;
    Shared shared;
    std::uint64_t stamp = 0;  // LRU clock
  };
  std::size_t max_entries_;
  std::mutex mu_;
  std::vector<Entry> entries_;
  std::uint64_t next_stamp_ = 0;
};

/// Resolves a FaultSimOptions::num_threads request against the amount of
/// shardable work: 0 = std::thread::hardware_concurrency(), otherwise the
/// requested count, clamped to [1, work_items].
int ResolveNumThreads(int requested, std::size_t work_items);

/// Partitions `live` (ascending work-item ids: fault classes or FFR
/// groups) into `shards` strided sub-lists: shard t owns live[t],
/// live[t + shards], ... Striding balances load when item difficulty
/// correlates with netlist position, and keeps every shard list in
/// ascending id order (the serial iteration order).
std::vector<std::vector<std::uint32_t>> StrideShards(
    const std::vector<std::uint32_t>& live, int shards);

/// Runs `kernel(shard_index)` once per shard on `shards` worker threads
/// (shard 0 runs on the calling thread). After all workers join, a single
/// failed shard rethrows its original exception (type intact, so the
/// campaign's error classification still sees it); multiple failures are
/// aggregated into one Error listing every failed shard index and message
/// — no shard's failure is ever silently dropped. The chaos site
/// `worker-throw` (common/chaos.h) is pre-drawn per shard on the calling
/// thread before workers spawn, keeping the injection schedule independent
/// of thread interleaving.
void RunOnShards(int shards, const std::function<void(int)>& kernel);

/// Throws DeadlineError when `options.cancel` is armed and expired. The
/// engines call this after their workers join (and after the serial loop):
/// workers return early with partial shards on expiry, and this turns the
/// partial state into a clean abort instead of a wrong report.
inline void AbortIfCancelled(const FaultSimOptions& options) {
  if (options.cancel != nullptr && options.cancel->Expired()) {
    throw DeadlineError(options.cancel->cancel_requested()
                            ? "fault sim cancelled"
                            : "fault sim aborted: stage deadline exceeded");
  }
}

/// An empty report with first_detect / per-pattern histograms / mask sized
/// for `num_faults` x `num_patterns`.
FaultSimResult InitFaultSimResult(std::size_t num_faults,
                                  std::size_t num_patterns);

/// Deterministic sharded merge (see the file comment for why this equals
/// the serial result exactly): shard fault ids are disjoint, so
/// first_detect / detected_mask scatter without conflicts and the
/// per-pattern histograms sum.
void MergeShardResults(const std::vector<FaultSimResult>& shards,
                       FaultSimResult& out);

}  // namespace gpustl::fault
