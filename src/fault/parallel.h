// Fault-parallel execution support for the PPSFP simulators.
//
// Both RunFaultSim and RunTransitionFaultSim parallelize the same way: the
// live (non-skipped) fault list is sharded across a small worker pool, each
// worker runs the unmodified serial PPSFP loop over its shard with private
// good-machine state, and a deterministic merge reconstructs the serial
// report. The merge is exact — not approximately equal — because the serial
// loop's accounting is per-fault independent:
//
//  * `first_detect[f]` and `detected_mask[f]` depend only on fault f's own
//    propagation history;
//  * dropping fault f (after its first detection) changes only fault f's
//    contribution to later blocks, never another fault's;
//  * `detects_per_pattern` / `activates_per_pattern` are sums of per-fault
//    indicator counts, and integer addition is order-independent.
//
// Summing shard histograms in (pattern, fault-id) order therefore replays
// the serial drop-ordered accounting bit-for-bit, for any shard count and
// any thread interleaving. The differential suite in
// tests/test_faultsim_parallel.cpp locks this equivalence down.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fault/faultsim.h"

namespace gpustl::fault {

/// Resolves a FaultSimOptions::num_threads request against the amount of
/// shardable work: 0 = std::thread::hardware_concurrency(), otherwise the
/// requested count, clamped to [1, work_items].
int ResolveNumThreads(int requested, std::size_t work_items);

/// Partitions `live` (ascending fault ids) into `shards` strided sub-lists:
/// shard t owns live[t], live[t + shards], ... Striding balances load when
/// fault difficulty correlates with netlist position, and keeps every shard
/// list in ascending fault-id order (the serial iteration order).
std::vector<std::vector<std::uint32_t>> StrideShards(
    const std::vector<std::uint32_t>& live, int shards);

/// Runs `kernel(shard_index)` once per shard on `shards` worker threads
/// (shard 0 runs on the calling thread). The first worker exception, by
/// shard index, is rethrown on the calling thread after all workers join.
void RunOnShards(int shards, const std::function<void(int)>& kernel);

/// An empty report with first_detect / per-pattern histograms / mask sized
/// for `num_faults` x `num_patterns`.
FaultSimResult InitFaultSimResult(std::size_t num_faults,
                                  std::size_t num_patterns);

/// Deterministic sharded merge (see the file comment for why this equals
/// the serial result exactly): shard fault ids are disjoint, so
/// first_detect / detected_mask scatter without conflicts and the
/// per-pattern histograms sum.
void MergeShardResults(const std::vector<FaultSimResult>& shards,
                       FaultSimResult& out);

}  // namespace gpustl::fault
