// Engine backends for the PPSFP fault simulators.
//
// The fault-sim inner loop is width-parameterized: a *backend* fixes how
// many patterns one propagation word carries and how that word is evaluated.
//
//   scalar — one 64-bit machine word per block. This is the original engine
//            (fault/faultsim.cpp, fault/transition.cpp), kept verbatim: it
//            is the differential ORACLE every other backend is tested
//            against, and the portable fallback the runtime dispatch
//            selects when no SIMD extension is usable.
//   wide   — the width-parameterized engine (fault/engine_wide.h) at 4
//            lanes (256 patterns per block) compiled WITHOUT SIMD codegen
//            flags. Portable to any CPU; exists so the wide engine's lane
//            bookkeeping (ragged tails, drop boundaries, carry chains) is
//            exercised on machines and CI runners without AVX2.
//   avx2   — the same 4-lane engine compiled with AVX2 codegen (one
//            256-bit vector op per bundle op). Compiled in only when the
//            toolchain accepts -mavx2; selected only when the CPU reports
//            AVX2. This is what `auto` resolves to on x86-64.
//   avx512 — the 8-lane instantiation (512 patterns per block) under
//            -mavx512f, compile-guarded the same way. Never chosen by
//            `auto` (explicit opt-in only: wider blocks help only when
//            enough patterns survive dropping to fill them).
//
// Every backend produces a bit-identical FaultSimResult — same
// first_detect, same per-pattern histograms, same masks — for every thread
// count and every collapse/cone/ffr toggle. The backend is therefore a pure
// cost knob, excluded from result-store fingerprints exactly like
// num_threads (tests/test_backend.cpp is the conformance suite that holds
// every registered backend to this bar).
#pragma once

#include <optional>
#include <string_view>
#include <vector>

namespace gpustl::fault {

enum class Backend {
  kAuto,    // runtime dispatch: best supported SIMD backend, else scalar
  kScalar,  // 64-bit oracle engine
  kWide,    // 4-lane wide engine, portable codegen
  kAvx2,    // 4-lane wide engine, AVX2 codegen
  kAvx512,  // 8-lane wide engine, AVX-512 codegen
};

/// Parses a CLI/env spelling ("auto", "scalar", "wide", "avx2", "avx512").
std::optional<Backend> ParseBackend(std::string_view name);

/// Stable token for reports, summaries and BENCH_faultsim.json.
std::string_view BackendName(Backend backend);

/// True when the backend's code was compiled into this binary (the SIMD
/// translation units are gated on toolchain support at configure time).
bool BackendCompiled(Backend backend);

/// True when the backend is compiled in AND the running CPU supports the
/// instruction set it was compiled for. scalar and wide are always
/// supported; kAuto is "supported" by definition (it resolves to something).
bool BackendSupported(Backend backend);

/// Resolves a requested backend to a concrete one:
///  * kAuto consults $GPUSTL_BACKEND first (same precedence pattern as
///    GPUSTL_NO_FFR: the env var configures runs whose argv cannot be
///    edited, an explicit --backend flag bypasses it); when the variable is
///    unset or set to "auto", dispatch picks kAvx2 when the CPU has it,
///    else kScalar.
///  * a concrete request returns itself when supported.
/// Throws SimError (class input-error) for unknown $GPUSTL_BACKEND
/// spellings or a concrete request the binary/CPU cannot honour — a wrong
/// backend must fail loudly, never silently fall back.
Backend ResolveBackend(Backend requested);

/// Every backend supported on this machine, scalar (the oracle) first.
/// This is what the conformance suite parameterizes over.
std::vector<Backend> RegisteredBackends();

/// Patterns per propagation block of a concrete backend (64, 256 or 512).
/// Not valid for kAuto.
int BackendWordBits(Backend backend);

}  // namespace gpustl::fault
