// Shared single-fault propagation scratch for the PPSFP engines
// (stuck-at and transition).
//
// Faulty net values are stored copy-on-write with epoch stamps so per-fault
// cleanup is O(1). The event queue is an array of buckets indexed by the
// netlist's precomputed levels: combinational events only ever fan out to
// strictly higher levels, so one ascending sweep over the buckets replays
// the events in topological order with O(1) push/pop (the previous
// std::priority_queue paid O(log n) per event). Results are bit-identical:
// gates on the same level never feed each other, so within-level ordering
// cannot change any evaluated value.
//
// Internal header — include from src/fault/*.cpp only.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"

namespace gpustl::fault::internal {

struct PropagationScratch {
  explicit PropagationScratch(const netlist::Netlist& nl)
      : levels(nl.levels().data()),
        fval(nl.gate_count(), 0),
        touched_epoch(nl.gate_count(), 0),
        queued_epoch(nl.gate_count(), 0),
        buckets(static_cast<std::size_t>(nl.max_level()) + 1) {}

  const std::uint32_t* levels;
  std::vector<std::uint64_t> fval;
  std::vector<std::uint32_t> touched_epoch;
  std::vector<std::uint32_t> queued_epoch;
  std::uint32_t epoch = 0;
  std::vector<std::vector<netlist::NetId>> buckets;
  std::uint32_t lo = 0;  // lowest level holding a pending event
  std::uint32_t hi = 0;  // highest level that ever held one this fault

  void NewFault() {
    ++epoch;
    lo = UINT32_MAX;
    hi = 0;
  }

  std::uint64_t FaultyValue(const std::vector<std::uint64_t>& good,
                            netlist::NetId net) const {
    return touched_epoch[net] == epoch ? fval[net] : good[net];
  }

  void SetFaulty(netlist::NetId net, std::uint64_t value) {
    fval[net] = value;
    touched_epoch[net] = epoch;
  }

  void Enqueue(netlist::NetId net) {
    if (queued_epoch[net] == epoch) return;
    queued_epoch[net] = epoch;
    const std::uint32_t lvl = levels[net];
    buckets[lvl].push_back(net);
    if (lvl < lo) lo = lvl;
    if (lvl > hi) hi = lvl;
  }

  /// Drains the pending events in level order, calling `evaluate(net)` once
  /// per event. `evaluate` may Enqueue further events, but only at strictly
  /// higher levels (combinational fanout), so the sweep never revisits a
  /// bucket. All buckets are empty afterwards.
  template <typename Fn>
  void Drain(Fn&& evaluate) {
    if (lo == UINT32_MAX) return;
    for (std::uint32_t lvl = lo; lvl <= hi; ++lvl) {
      std::vector<netlist::NetId>& bucket = buckets[lvl];
      for (std::size_t i = 0; i < bucket.size(); ++i) evaluate(bucket[i]);
      bucket.clear();
    }
  }
};

/// Per-worker scratch of the FFR-clustered stuck-at engine: the stem
/// propagation state plus the backward critical-path-tracing buffers. `obs`
/// holds, per net, the word of patterns on which a value change at the net
/// reaches its region's stem; only the members of the region currently
/// being traced are valid at any moment (stale entries from other regions
/// are never read — every member is rewritten before use). The per-class
/// vectors are reused across regions to avoid reallocation.
struct FfrScratch {
  explicit FfrScratch(const netlist::Netlist& nl)
      : prop(nl), obs(nl.gate_count(), 0) {}

  PropagationScratch prop;
  std::vector<std::uint64_t> obs;         // site-to-stem observability words
  std::vector<std::uint64_t> leader_act;  // per live class of one region
  std::vector<std::uint64_t> stem_local;  // leader activation & site obs
};

}  // namespace gpustl::fault::internal
