// Prior-work baseline: iterative compaction with per-candidate fault
// re-simulation (the approach of [13]-[16] the paper compares against).
//
// The baseline walks the PTP's Small Blocks from last to first; for each SB
// it tentatively removes the block, re-runs the logic simulation AND a full
// fault simulation of the candidate PTP, and accepts the removal only if
// the fault coverage is preserved. Complexity: one fault simulation per
// candidate (hundreds to thousands per PTP), versus the proposed method's
// single fault simulation — this is exactly the cost gap the paper's
// "compaction time" column quantifies, reproduced by bench_baseline_compare.
#pragma once

#include <cstdint>

#include "compact/compactor.h"

namespace gpustl::baseline {

struct IterativeResult {
  isa::Program compacted;
  std::size_t original_size = 0;
  std::size_t final_size = 0;
  std::uint64_t original_duration = 0;
  std::uint64_t final_duration = 0;
  double fc_percent = 0.0;        // coverage of the compacted PTP
  std::size_t fault_simulations = 0;
  std::size_t logic_simulations = 0;
  double compaction_seconds = 0.0;
};

struct IterativeOptions {
  /// Accept a removal if the coverage drops by at most this many percent
  /// points (0 = strict preservation).
  double fc_tolerance = 0.0;

  gpu::SmConfig sm;
};

/// Runs the baseline on one PTP against one module.
IterativeResult IterativeCompact(const netlist::Netlist& module,
                                 trace::TargetModule target,
                                 const isa::Program& ptp,
                                 const IterativeOptions& options = {});

}  // namespace gpustl::baseline
