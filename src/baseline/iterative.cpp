#include "baseline/iterative.h"

#include <algorithm>

#include "common/timer.h"
#include "isa/cfg.h"

namespace gpustl::baseline {

using compact::SegmentSmallBlocks;
using compact::SmallBlock;
using fault::RunFaultSim;
using isa::Program;

namespace {

struct Measurement {
  double fc = 0.0;
  std::uint64_t duration = 0;
};

Measurement Measure(const netlist::Netlist& module,
                    trace::TargetModule target,
                    const std::vector<fault::Fault>& faults,
                    const gpu::SmConfig& sm_config, const Program& ptp) {
  trace::PatternProbe probe(target);
  gpu::Sm sm(sm_config);
  sm.AddMonitor(&probe);
  const gpu::RunResult run = sm.Run(ptp);
  const auto report = RunFaultSim(module, probe.patterns(), faults, nullptr,
                                  {.drop_detected = true});
  return {fault::CoveragePercent(report.num_detected, faults.size()),
          run.total_cycles};
}

}  // namespace

IterativeResult IterativeCompact(const netlist::Netlist& module,
                                 trace::TargetModule target,
                                 const Program& ptp,
                                 const IterativeOptions& options) {
  Timer timer;
  IterativeResult res;
  res.original_size = ptp.size();

  const std::vector<fault::Fault> faults = fault::CollapsedFaultList(module);

  Program current = ptp;
  Measurement best = Measure(module, target, faults, options.sm, current);
  res.fault_simulations = 1;
  res.logic_simulations = 1;
  res.original_duration = best.duration;

  // Walk SBs from the last to the first, re-segmenting after each accepted
  // removal (indices shift).
  bool progress = true;
  while (progress) {
    progress = false;
    const isa::Cfg cfg(current);
    const auto sbs = SegmentSmallBlocks(current, cfg.AdmissibleMask());
    // Candidates from last to first.
    for (std::size_t k = sbs.size(); k-- > 0;) {
      const SmallBlock& sb = sbs[k];
      if (!sb.admissible || sb.size() == 0) continue;
      std::vector<std::size_t> removal;
      for (std::uint32_t i = sb.begin; i < sb.end; ++i) removal.push_back(i);
      Program candidate = current.RemoveInstructions(removal);

      const Measurement m =
          Measure(module, target, faults, options.sm, candidate);
      ++res.fault_simulations;
      ++res.logic_simulations;

      if (m.fc + 1e-12 >= best.fc - options.fc_tolerance) {
        current = std::move(candidate);
        best = m;
        progress = true;
        break;  // re-segment and continue
      }
    }
  }

  compact::RelocateData(current);
  res.final_size = current.size();
  res.final_duration = best.duration;
  res.fc_percent = best.fc;
  res.compacted = std::move(current);
  res.compaction_seconds = timer.Seconds();
  return res;
}

}  // namespace gpustl::baseline
