#include "isa/cfg.h"

#include <algorithm>
#include <set>

#include "common/error.h"

namespace gpustl::isa {
namespace {

bool EndsBlock(const Instruction& inst) {
  // Any control transfer ends a block; SSY does not transfer control but
  // its target must begin a block, which is handled via leaders.
  const OpcodeInfo& info = inst.info();
  return info.is_branch;
}

}  // namespace

Cfg::Cfg(const Program& prog) : prog_(&prog) {
  BuildBlocks(prog);
  BuildEdges(prog);
  ComputeDominators();
  FindLoops(prog);
}

void Cfg::BuildBlocks(const Program& prog) {
  const auto& code = prog.code();
  std::set<std::uint32_t> leaders;
  if (!code.empty()) leaders.insert(0);
  for (std::uint32_t i = 0; i < code.size(); ++i) {
    const Instruction& inst = code[i];
    if (inst.info().format == Format::kBranch) {
      leaders.insert(std::min<std::uint32_t>(
          inst.imm, static_cast<std::uint32_t>(code.size())));
    }
    if (EndsBlock(inst) && i + 1 < code.size()) leaders.insert(i + 1);
  }
  leaders.insert(static_cast<std::uint32_t>(code.size()));

  block_of_.assign(code.size(), 0);
  auto it = leaders.begin();
  while (it != leaders.end()) {
    const std::uint32_t begin = *it;
    ++it;
    if (it == leaders.end()) break;
    BasicBlock bb;
    bb.begin = begin;
    bb.end = *it;
    const auto id = static_cast<std::uint32_t>(blocks_.size());
    for (std::uint32_t i = bb.begin; i < bb.end; ++i) block_of_[i] = id;
    blocks_.push_back(std::move(bb));
  }
}

void Cfg::BuildEdges(const Program& prog) {
  const auto& code = prog.code();
  auto add_edge = [&](std::uint32_t from, std::uint32_t to_instr) {
    if (to_instr >= code.size()) return;  // edge to program end
    const std::uint32_t to = block_of_[to_instr];
    auto& s = blocks_[from].succs;
    if (std::find(s.begin(), s.end(), to) == s.end()) {
      s.push_back(to);
      blocks_[to].preds.push_back(from);
    }
  };

  for (std::uint32_t b = 0; b < blocks_.size(); ++b) {
    const BasicBlock& bb = blocks_[b];
    if (bb.size() == 0) continue;
    const Instruction& last = code[bb.end - 1];
    const OpcodeInfo& info = last.info();
    switch (last.op) {
      case Opcode::BRA:
        add_edge(b, last.imm);
        if (last.predicated) add_edge(b, bb.end);
        break;
      case Opcode::CAL:
        // Inline-call model: control reaches the callee and, after its RET,
        // the fall-through. Model both as successors.
        add_edge(b, last.imm);
        add_edge(b, bb.end);
        break;
      case Opcode::RET:
      case Opcode::EXIT:
        break;  // no static successors
      case Opcode::SYNC:
        add_edge(b, bb.end);
        break;
      default:
        if (!info.is_branch) add_edge(b, bb.end);
        break;
    }
  }
}

void Cfg::ComputeDominators() {
  const std::uint32_t n = static_cast<std::uint32_t>(blocks_.size());
  idom_.assign(n, UINT32_MAX);
  if (n == 0) return;

  // Reverse postorder over the CFG from the entry block.
  std::vector<std::uint32_t> order;
  std::vector<int> state(n, 0);
  std::vector<std::pair<std::uint32_t, std::size_t>> stack{{0u, 0u}};
  state[0] = 1;
  while (!stack.empty()) {
    auto& [node, next] = stack.back();
    if (next < blocks_[node].succs.size()) {
      const std::uint32_t s = blocks_[node].succs[next++];
      if (state[s] == 0) {
        state[s] = 1;
        stack.push_back({s, 0});
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  std::reverse(order.begin(), order.end());  // now reverse postorder

  std::vector<std::uint32_t> rpo_index(n, UINT32_MAX);
  for (std::uint32_t i = 0; i < order.size(); ++i) rpo_index[order[i]] = i;

  auto intersect = [&](std::uint32_t a, std::uint32_t b) {
    while (a != b) {
      while (rpo_index[a] > rpo_index[b]) a = idom_[a];
      while (rpo_index[b] > rpo_index[a]) b = idom_[b];
    }
    return a;
  };

  idom_[0] = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::uint32_t node : order) {
      if (node == 0) continue;
      std::uint32_t new_idom = UINT32_MAX;
      for (std::uint32_t p : blocks_[node].preds) {
        if (rpo_index[p] == UINT32_MAX) continue;  // unreachable pred
        if (idom_[p] == UINT32_MAX) continue;      // not yet processed
        new_idom = new_idom == UINT32_MAX ? p : intersect(p, new_idom);
      }
      if (new_idom != UINT32_MAX && idom_[node] != new_idom) {
        idom_[node] = new_idom;
        changed = true;
      }
    }
  }
}

bool Cfg::Dominates(std::uint32_t a, std::uint32_t b) const {
  if (idom_.empty()) return false;
  std::uint32_t cur = b;
  for (;;) {
    if (cur == a) return true;
    if (cur == 0 || idom_[cur] == UINT32_MAX) return a == 0 && cur == 0;
    if (idom_[cur] == cur) return a == cur;
    cur = idom_[cur];
    if (cur == 0) return a == 0;
  }
}

void Cfg::FindLoops(const Program& prog) {
  for (std::uint32_t u = 0; u < blocks_.size(); ++u) {
    for (std::uint32_t h : blocks_[u].succs) {
      if (idom_[u] == UINT32_MAX) continue;  // unreachable
      if (!Dominates(h, u)) continue;        // not a back edge
      Loop loop;
      loop.header = h;
      // Natural loop: h plus all nodes reaching u without passing h.
      std::set<std::uint32_t> body{h, u};
      std::vector<std::uint32_t> work{u};
      while (!work.empty()) {
        const std::uint32_t node = work.back();
        work.pop_back();
        if (node == h) continue;
        for (std::uint32_t p : blocks_[node].preds) {
          if (body.insert(p).second) work.push_back(p);
        }
      }
      loop.blocks.assign(body.begin(), body.end());
      loop.parametric = LoopIsParametric(prog, loop);
      loops_.push_back(std::move(loop));
    }
  }
}

bool Cfg::LoopIsParametric(const Program& prog, const Loop& loop) const {
  const auto& code = prog.code();

  // Find the predicated branches inside the loop that jump to the header
  // (the back-edge branches controlling iteration).
  std::vector<const Instruction*> back_branches;
  for (std::uint32_t b : loop.blocks) {
    const BasicBlock& bb = blocks_[b];
    if (bb.size() == 0) continue;
    const Instruction& last = code[bb.end - 1];
    if (last.op == Opcode::BRA &&
        block_of_[std::min<std::uint32_t>(
            last.imm, static_cast<std::uint32_t>(code.size() - 1))] ==
            loop.header) {
      if (!last.predicated) return true;  // unconditional back edge
      back_branches.push_back(&last);
    }
  }
  if (back_branches.empty()) return true;  // exit controlled elsewhere: be safe

  // A register is "literal-defined" if every definition of it in the whole
  // program is a MOV32I constant, an S2R of a launch constant is NOT
  // accepted, and self-incrementing IADD32I r, r, imm is accepted as the
  // induction update.
  auto literal_defined = [&](std::uint8_t reg) {
    bool has_def = false;
    for (const Instruction& inst : code) {
      if (!inst.info().writes_reg || inst.dst != reg) continue;
      has_def = true;
      const bool is_const_mov = inst.op == Opcode::MOV32I;
      const bool is_induction =
          inst.op == Opcode::IADD32I && inst.src_a == reg && inst.has_imm;
      if (!is_const_mov && !is_induction) return false;
    }
    return has_def;
  };

  for (const Instruction* bra : back_branches) {
    // Find the SETP defining this branch's predicate inside the loop.
    const Instruction* setp = nullptr;
    for (std::uint32_t b : loop.blocks) {
      const BasicBlock& bb = blocks_[b];
      for (std::uint32_t i = bb.begin; i < bb.end; ++i) {
        const Instruction& inst = code[i];
        if (inst.info().writes_pred && inst.dst == bra->pred_reg) setp = &inst;
      }
    }
    if (setp == nullptr) return true;  // predicate set outside loop: parametric

    if (!literal_defined(setp->src_a)) return true;
    if (!setp->has_imm && !literal_defined(setp->src_b)) return true;
  }
  return false;
}

std::uint32_t Cfg::BlockOf(std::uint32_t instr) const {
  GPUSTL_ASSERT(instr < block_of_.size(), "instruction index out of range");
  return block_of_[instr];
}

std::vector<bool> Cfg::ParametricLoopMask() const {
  std::vector<bool> mask(prog_->code().size(), false);
  for (const Loop& loop : loops_) {
    if (!loop.parametric) continue;
    for (std::uint32_t b : loop.blocks) {
      for (std::uint32_t i = blocks_[b].begin; i < blocks_[b].end; ++i) {
        mask[i] = true;
      }
    }
  }
  return mask;
}

std::vector<bool> Cfg::AdmissibleMask() const {
  const auto& code = prog_->code();
  std::vector<bool> mask = ParametricLoopMask();
  mask.flip();  // admissible = NOT in a parametric loop ...

  // ... minus control-flow and synchronization instructions: they define
  // the program structure the SBs live in (the paper's SBs are
  // load-execute-propagate sequences; branches sit at region boundaries).
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Instruction& inst = code[i];
    if (inst.info().unit == ExecUnit::kControl && inst.op != Opcode::NOP) {
      mask[i] = false;
    }
  }
  return mask;
}

double Cfg::ArcFraction() const {
  const auto parametric = ParametricLoopMask();
  if (parametric.empty()) return 0.0;
  const auto excluded = static_cast<double>(
      std::count(parametric.begin(), parametric.end(), true));
  return 1.0 - excluded / static_cast<double>(parametric.size());
}

}  // namespace gpustl::isa
