// Binary container for assembled PTPs (the "kernel image" format).
//
// Layout (little-endian):
//   magic   "GPTP"            4 bytes
//   version u32 (= 1)
//   blocks  u32, threads u32
//   name    u32 length + bytes
//   nseg    u32, then per segment: addr u32, nwords u32, words u32[n]
//   ncode   u32, then 64-bit instruction words
//
// The format is a faithful round trip of isa::Program and is what the
// gpustlc CLI reads/writes between pipeline steps.
#pragma once

#include <iosfwd>

#include "isa/program.h"

namespace gpustl::isa {

/// Serializes a program. Throws Error on stream failure.
void SaveBinary(std::ostream& os, const Program& prog);

/// Deserializes; throws AsmError on malformed input, validates the result.
Program LoadBinary(std::istream& is);

}  // namespace gpustl::isa
