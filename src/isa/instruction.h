// In-memory instruction model and its 64-bit binary encoding.
//
// Every instruction occupies one 64-bit SASS-style word. The word layout is
// what the gate-level Decoder Unit receives on its input port each time an
// instruction is issued, so the encoding doubles as the DU test pattern:
//
//   [ 0, 8)  opcode
//   [ 8,10)  predicate register index (P0..P3)
//   [10]     predicated-execution flag
//   [11]     predicate-negate flag
//   [12,18)  dst register (R0..R63); for SETP: predicate dst in [12,14)
//   [18,24)  srcA register
//   [24,30)  srcB register (register form)
//   [30]     immediate flag (srcB/operand-2 comes from imm32)
//   [31]     reserved (always 0)
//   [32,64)  imm32: immediate value, memory offset, branch target,
//            special-register selector, or (register form) srcC in [32,38)
//            and cmp-op in [38,41)
#pragma once

#include <cstdint>
#include <string>

#include "isa/opcode.h"

namespace gpustl::isa {

inline constexpr int kNumRegs = 64;
inline constexpr int kNumPredRegs = 4;

/// One decoded SASS-like instruction.
///
/// This is a plain value type: the assembler produces them, the GPU model
/// executes them, the compactor relabels and removes them. The `Encode()` /
/// `Decode()` pair is a lossless 64-bit round trip.
struct Instruction {
  Opcode op = Opcode::NOP;

  // Predication (@P0 / @!P1 prefixes).
  bool predicated = false;
  bool pred_negated = false;
  std::uint8_t pred_reg = 0;

  // Register operands. Meaning depends on GetOpcodeInfo(op).format.
  std::uint8_t dst = 0;   // general dst, or predicate dst for SETP
  std::uint8_t src_a = 0;
  std::uint8_t src_b = 0;
  std::uint8_t src_c = 0;  // third source for IMAD/FFMA/SEL

  // Immediate operand / memory offset / branch target / S2R selector.
  bool has_imm = false;
  std::uint32_t imm = 0;

  // Comparison subfield for ISETP/FSETP.
  CmpOp cmp = CmpOp::kEQ;

  const OpcodeInfo& info() const { return GetOpcodeInfo(op); }

  /// Packs into the 64-bit SASS-style word described above.
  std::uint64_t Encode() const;

  /// Unpacks a 64-bit word. Throws AsmError on an invalid opcode field.
  static Instruction Decode(std::uint64_t word);

  bool operator==(const Instruction&) const = default;
};

// --- Convenience constructors used by the PTP generators and tests. ---

/// dst = a <op> b (register form).
Instruction MakeRRR(Opcode op, int dst, int a, int b);

/// dst = a * b + c style three-source ops.
Instruction MakeRRRC(Opcode op, int dst, int a, int b, int c);

/// dst = a <op> imm (immediate form).
Instruction MakeRRI(Opcode op, int dst, int a, std::uint32_t imm);

/// Unary dst = <op> a.
Instruction MakeRR(Opcode op, int dst, int a);

/// MOV32I dst, imm.
Instruction MakeMov32(int dst, std::uint32_t imm);

/// S2R dst, special-register.
Instruction MakeS2R(int dst, SpecialReg sr);

/// ISETP/FSETP pred_dst, a, b (register compare).
Instruction MakeSetp(Opcode op, CmpOp cmp, int pred_dst, int a, int b);

/// ISETP/FSETP pred_dst, a, imm (immediate compare).
Instruction MakeSetpImm(Opcode op, CmpOp cmp, int pred_dst, int a,
                        std::uint32_t imm);

/// Memory access `reg, [addr_reg + offset]`. For loads `reg` is dst; for
/// stores it is the data source.
Instruction MakeMem(Opcode op, int reg, int addr_reg, std::uint32_t offset);

/// Control transfer to absolute instruction index `target`.
Instruction MakeBranch(Opcode op, std::uint32_t target);

/// Opcode with no operands (EXIT/RET/SYNC/BAR/NOP).
Instruction MakePlain(Opcode op);

/// Applies an @P / @!P guard to any instruction.
Instruction WithPred(Instruction inst, int pred_reg, bool negated);

}  // namespace gpustl::isa
