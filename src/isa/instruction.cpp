#include "isa/instruction.h"

#include "common/bitops.h"
#include "common/error.h"

namespace gpustl::isa {

std::uint64_t Instruction::Encode() const {
  std::uint64_t w = 0;
  w = SetBitField(w, 0, 8, static_cast<std::uint64_t>(op));
  w = SetBitField(w, 8, 2, pred_reg);
  w = SetBitField(w, 10, 1, predicated ? 1 : 0);
  w = SetBitField(w, 11, 1, pred_negated ? 1 : 0);
  w = SetBitField(w, 12, 6, dst);
  w = SetBitField(w, 18, 6, src_a);
  w = SetBitField(w, 30, 1, has_imm ? 1 : 0);
  if (has_imm) {
    w = SetBitField(w, 32, 32, imm);
    if (info().format == Format::kSetp) {
      // Immediate-compare form keeps the cmp-op in the srcB field (unused
      // by the immediate operand) so the round trip stays lossless.
      w = SetBitField(w, 24, 3, static_cast<std::uint64_t>(cmp));
    }
  } else {
    w = SetBitField(w, 24, 6, src_b);
    w = SetBitField(w, 32, 6, src_c);
    w = SetBitField(w, 38, 3, static_cast<std::uint64_t>(cmp));
  }
  return w;
}

Instruction Instruction::Decode(std::uint64_t word) {
  const std::uint64_t op_field = BitField(word, 0, 8);
  if (op_field >= static_cast<std::uint64_t>(Opcode::kCount)) {
    throw AsmError("invalid opcode field " + std::to_string(op_field));
  }
  Instruction inst;
  inst.op = static_cast<Opcode>(op_field);
  inst.pred_reg = static_cast<std::uint8_t>(BitField(word, 8, 2));
  inst.predicated = BitField(word, 10, 1) != 0;
  inst.pred_negated = BitField(word, 11, 1) != 0;
  inst.dst = static_cast<std::uint8_t>(BitField(word, 12, 6));
  inst.src_a = static_cast<std::uint8_t>(BitField(word, 18, 6));
  inst.has_imm = BitField(word, 30, 1) != 0;
  if (inst.has_imm) {
    inst.imm = static_cast<std::uint32_t>(BitField(word, 32, 32));
    inst.src_b = 0;
    inst.src_c = 0;
    if (inst.info().format == Format::kSetp) {
      inst.cmp = static_cast<CmpOp>(BitField(word, 24, 3));
    }
  } else {
    inst.src_b = static_cast<std::uint8_t>(BitField(word, 24, 6));
    inst.src_c = static_cast<std::uint8_t>(BitField(word, 32, 6));
    inst.cmp = static_cast<CmpOp>(BitField(word, 38, 3));
  }
  return inst;
}

namespace {
void CheckReg(int r) {
  GPUSTL_ASSERT(r >= 0 && r < kNumRegs, "register index out of range");
}
void CheckPred(int p) {
  GPUSTL_ASSERT(p >= 0 && p < kNumPredRegs, "predicate index out of range");
}
}  // namespace

Instruction MakeRRR(Opcode op, int dst, int a, int b) {
  CheckReg(dst);
  CheckReg(a);
  CheckReg(b);
  Instruction i;
  i.op = op;
  i.dst = static_cast<std::uint8_t>(dst);
  i.src_a = static_cast<std::uint8_t>(a);
  i.src_b = static_cast<std::uint8_t>(b);
  return i;
}

Instruction MakeRRRC(Opcode op, int dst, int a, int b, int c) {
  Instruction i = MakeRRR(op, dst, a, b);
  CheckReg(c);
  i.src_c = static_cast<std::uint8_t>(c);
  return i;
}

Instruction MakeRRI(Opcode op, int dst, int a, std::uint32_t imm) {
  CheckReg(dst);
  CheckReg(a);
  Instruction i;
  i.op = op;
  i.dst = static_cast<std::uint8_t>(dst);
  i.src_a = static_cast<std::uint8_t>(a);
  i.has_imm = true;
  i.imm = imm;
  return i;
}

Instruction MakeRR(Opcode op, int dst, int a) {
  CheckReg(dst);
  CheckReg(a);
  Instruction i;
  i.op = op;
  i.dst = static_cast<std::uint8_t>(dst);
  i.src_a = static_cast<std::uint8_t>(a);
  return i;
}

Instruction MakeMov32(int dst, std::uint32_t imm) {
  CheckReg(dst);
  Instruction i;
  i.op = Opcode::MOV32I;
  i.dst = static_cast<std::uint8_t>(dst);
  i.has_imm = true;
  i.imm = imm;
  return i;
}

Instruction MakeS2R(int dst, SpecialReg sr) {
  CheckReg(dst);
  Instruction i;
  i.op = Opcode::S2R;
  i.dst = static_cast<std::uint8_t>(dst);
  i.has_imm = true;
  i.imm = static_cast<std::uint32_t>(sr);
  return i;
}

Instruction MakeSetp(Opcode op, CmpOp cmp, int pred_dst, int a, int b) {
  GPUSTL_ASSERT(op == Opcode::ISETP || op == Opcode::FSETP, "not a SETP op");
  CheckPred(pred_dst);
  CheckReg(a);
  CheckReg(b);
  Instruction i;
  i.op = op;
  i.cmp = cmp;
  i.dst = static_cast<std::uint8_t>(pred_dst);
  i.src_a = static_cast<std::uint8_t>(a);
  i.src_b = static_cast<std::uint8_t>(b);
  return i;
}

Instruction MakeSetpImm(Opcode op, CmpOp cmp, int pred_dst, int a,
                        std::uint32_t imm) {
  GPUSTL_ASSERT(op == Opcode::ISETP || op == Opcode::FSETP, "not a SETP op");
  CheckPred(pred_dst);
  CheckReg(a);
  Instruction i;
  i.op = op;
  i.cmp = cmp;
  i.dst = static_cast<std::uint8_t>(pred_dst);
  i.src_a = static_cast<std::uint8_t>(a);
  i.has_imm = true;
  i.imm = imm;
  return i;
}

Instruction MakeMem(Opcode op, int reg, int addr_reg, std::uint32_t offset) {
  GPUSTL_ASSERT(GetOpcodeInfo(op).format == Format::kMem, "not a memory op");
  CheckReg(reg);
  CheckReg(addr_reg);
  Instruction i;
  i.op = op;
  i.dst = static_cast<std::uint8_t>(reg);
  i.src_a = static_cast<std::uint8_t>(addr_reg);
  i.has_imm = true;
  i.imm = offset;
  return i;
}

Instruction MakeBranch(Opcode op, std::uint32_t target) {
  GPUSTL_ASSERT(GetOpcodeInfo(op).format == Format::kBranch, "not a branch op");
  Instruction i;
  i.op = op;
  i.has_imm = true;
  i.imm = target;
  return i;
}

Instruction MakePlain(Opcode op) {
  GPUSTL_ASSERT(GetOpcodeInfo(op).format == Format::kPlain, "not a plain op");
  Instruction i;
  i.op = op;
  return i;
}

Instruction WithPred(Instruction inst, int pred_reg, bool negated) {
  CheckPred(pred_reg);
  inst.predicated = true;
  inst.pred_reg = static_cast<std::uint8_t>(pred_reg);
  inst.pred_negated = negated;
  return inst;
}

}  // namespace gpustl::isa
