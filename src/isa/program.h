// A Parallel Test Program (PTP): instructions + kernel launch configuration
// + global-memory input data. This is the unit the compaction method
// operates on (the paper's "PTP" within an STL).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/instruction.h"

namespace gpustl::isa {

/// Kernel launch configuration (grid shape, 1-D as in FlexGripPlus).
struct KernelConfig {
  int blocks = 1;
  int threads_per_block = 32;

  int warps_per_block() const { return (threads_per_block + 31) / 32; }
  int total_threads() const { return blocks * threads_per_block; }

  bool operator==(const KernelConfig&) const = default;
};

/// One global-memory initializer: `words` are written starting at `addr`
/// (byte address, word-aligned) before the kernel launches.
struct DataSegment {
  std::uint32_t addr = 0;
  std::vector<std::uint32_t> words;

  bool operator==(const DataSegment&) const = default;
};

/// A complete PTP.
///
/// Branch targets inside `code` are absolute instruction indices, so removing
/// instructions requires retargeting — the compactor's reassembly stage does
/// this via `Program::RemoveInstructions`.
class Program {
 public:
  Program() = default;
  explicit Program(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  KernelConfig& config() { return config_; }
  const KernelConfig& config() const { return config_; }

  std::vector<Instruction>& code() { return code_; }
  const std::vector<Instruction>& code() const { return code_; }

  std::vector<DataSegment>& data() { return data_; }
  const std::vector<DataSegment>& data() const { return data_; }

  std::size_t size() const { return code_.size(); }

  /// Appends an instruction; returns its index (useful for branch fixups).
  std::size_t Append(const Instruction& inst);

  /// Total bytes of initialized global-memory input data.
  std::size_t DataWords() const;

  /// Returns a copy with the instructions at the (sorted, unique) indices in
  /// `remove` deleted and every branch/SSY target retargeted to the new
  /// index of its destination. If a removed instruction is itself a branch
  /// target, surviving branches are redirected to the next surviving
  /// instruction at or after the old target.
  Program RemoveInstructions(const std::vector<std::size_t>& remove) const;

  /// Checks structural sanity: branch targets in range, SETP predicate
  /// destinations valid. Throws AsmError on violation.
  void Validate() const;

  bool operator==(const Program&) const = default;

 private:
  std::string name_;
  KernelConfig config_;
  std::vector<Instruction> code_;
  std::vector<DataSegment> data_;
};

}  // namespace gpustl::isa
