#include "isa/assembler.h"

#include <map>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/strutil.h"

namespace gpustl::isa {
namespace {

struct PendingInst {
  Instruction inst;
  std::string target_label;  // non-empty for branches awaiting resolution
  int line = 0;
};

[[noreturn]] void Fail(int line, const std::string& msg) {
  throw AsmError("line " + std::to_string(line) + ": " + msg);
}

// Strips comments and the optional trailing ';'.
std::string_view CleanLine(std::string_view line) {
  for (std::string_view marker : {"//", "#"}) {
    if (const auto pos = line.find(marker); pos != std::string_view::npos) {
      line = line.substr(0, pos);
    }
  }
  line = Trim(line);
  while (!line.empty() && line.back() == ';') {
    line.remove_suffix(1);
    line = Trim(line);
  }
  return line;
}

int ParseReg(std::string_view tok, int line) {
  tok = Trim(tok);
  if (tok.size() < 2 || (tok[0] != 'R' && tok[0] != 'r')) {
    Fail(line, "expected register, got '" + std::string(tok) + "'");
  }
  const auto n = ParseInt(tok.substr(1));
  if (!n || *n < 0 || *n >= kNumRegs) {
    Fail(line, "bad register '" + std::string(tok) + "'");
  }
  return static_cast<int>(*n);
}

int ParsePredReg(std::string_view tok, int line) {
  tok = Trim(tok);
  if (tok.size() < 2 || (tok[0] != 'P' && tok[0] != 'p')) {
    Fail(line, "expected predicate register, got '" + std::string(tok) + "'");
  }
  const auto n = ParseInt(tok.substr(1));
  if (!n || *n < 0 || *n >= kNumPredRegs) {
    Fail(line, "bad predicate register '" + std::string(tok) + "'");
  }
  return static_cast<int>(*n);
}

std::uint32_t ParseImm(std::string_view tok, int line) {
  const auto v = ParseInt(tok);
  if (!v) Fail(line, "bad immediate '" + std::string(tok) + "'");
  return static_cast<std::uint32_t>(*v);
}

bool IsRegToken(std::string_view tok) {
  tok = Trim(tok);
  return tok.size() >= 2 && (tok[0] == 'R' || tok[0] == 'r') &&
         ParseInt(tok.substr(1)).has_value();
}

// Parses "[Rn+off]" or "[Rn]" into (reg, offset).
std::pair<int, std::uint32_t> ParseMemRef(std::string_view tok, int line) {
  tok = Trim(tok);
  if (tok.size() < 2 || tok.front() != '[' || tok.back() != ']') {
    Fail(line, "expected memory reference, got '" + std::string(tok) + "'");
  }
  tok = tok.substr(1, tok.size() - 2);
  const auto plus = tok.find('+');
  if (plus == std::string_view::npos) return {ParseReg(tok, line), 0};
  return {ParseReg(tok.substr(0, plus), line),
          ParseImm(tok.substr(plus + 1), line)};
}

}  // namespace

Program Assemble(std::string_view source) {
  Program prog;
  std::map<std::string, std::uint32_t, std::less<>> labels;
  std::vector<PendingInst> pending;

  int line_no = 0;
  for (std::string_view raw : Split(source, '\n')) {
    ++line_no;
    std::string_view line = CleanLine(raw);
    if (line.empty()) continue;

    // Labels (possibly followed by code on the same line).
    while (true) {
      const auto colon = line.find(':');
      if (colon == std::string_view::npos) break;
      // Memory refs contain no ':' and .data uses "addr:" handled below.
      const std::string_view head = Trim(line.substr(0, colon));
      if (head.empty() || head[0] == '.' || head.find(' ') != std::string_view::npos ||
          head.find('[') != std::string_view::npos) {
        break;
      }
      const std::string label(head);
      if (labels.count(label)) Fail(line_no, "duplicate label '" + label + "'");
      labels[label] = static_cast<std::uint32_t>(pending.size());
      line = Trim(line.substr(colon + 1));
      if (line.empty()) break;
    }
    if (line.empty()) continue;

    // Directives.
    if (line[0] == '.') {
      const auto toks = SplitWs(line);
      const std::string dir = ToLower(toks[0]);
      if (dir == ".entry") {
        if (toks.size() != 2) Fail(line_no, ".entry expects a name");
        prog.set_name(std::string(toks[1]));
      } else if (dir == ".blocks") {
        if (toks.size() != 2) Fail(line_no, ".blocks expects a count");
        prog.config().blocks = static_cast<int>(ParseImm(toks[1], line_no));
      } else if (dir == ".threads") {
        if (toks.size() != 2) Fail(line_no, ".threads expects a count");
        prog.config().threads_per_block =
            static_cast<int>(ParseImm(toks[1], line_no));
      } else if (dir == ".data") {
        // ".data ADDR: w0 w1 w2 ..."
        const auto colon = line.find(':');
        if (colon == std::string_view::npos) Fail(line_no, ".data needs 'addr:'");
        DataSegment seg;
        const auto addr_toks = SplitWs(line.substr(5, colon - 5));
        if (addr_toks.size() != 1) Fail(line_no, ".data needs one address");
        seg.addr = ParseImm(addr_toks[0], line_no);
        for (auto w : SplitWs(line.substr(colon + 1))) {
          seg.words.push_back(ParseImm(w, line_no));
        }
        prog.data().push_back(std::move(seg));
      } else {
        Fail(line_no, "unknown directive '" + dir + "'");
      }
      continue;
    }

    // Optional predicate guard "@P0" / "@!P2".
    bool predicated = false, pred_neg = false;
    int pred_reg = 0;
    if (line[0] == '@') {
      auto sp = line.find_first_of(" \t");
      if (sp == std::string_view::npos) Fail(line_no, "guard without opcode");
      std::string_view guard = line.substr(1, sp - 1);
      if (!guard.empty() && guard[0] == '!') {
        pred_neg = true;
        guard.remove_prefix(1);
      }
      pred_reg = ParsePredReg(guard, line_no);
      predicated = true;
      line = Trim(line.substr(sp));
      if (line.empty()) Fail(line_no, "guard without opcode");
    }

    // Mnemonic (possibly with .CMP suffix) and comma-separated operands.
    const auto sp = line.find_first_of(" \t");
    std::string mnemonic(sp == std::string_view::npos ? line : line.substr(0, sp));
    std::string_view rest =
        sp == std::string_view::npos ? std::string_view{} : Trim(line.substr(sp));

    CmpOp cmp = CmpOp::kEQ;
    bool has_cmp_suffix = false;
    if (const auto dot = mnemonic.find('.'); dot != std::string::npos) {
      const auto c = CmpOpFromName(mnemonic.substr(dot + 1));
      if (!c) Fail(line_no, "unknown suffix '" + mnemonic.substr(dot + 1) + "'");
      cmp = *c;
      has_cmp_suffix = true;
      mnemonic.resize(dot);
    }

    const auto op = OpcodeFromMnemonic(mnemonic);
    if (!op) Fail(line_no, "unknown mnemonic '" + mnemonic + "'");
    const OpcodeInfo& info = GetOpcodeInfo(*op);
    if (has_cmp_suffix && info.format != Format::kSetp) {
      Fail(line_no, "comparison suffix on non-SETP instruction");
    }

    std::vector<std::string_view> ops;
    if (!rest.empty()) {
      for (auto o : Split(rest, ',')) ops.push_back(Trim(o));
    }

    PendingInst p;
    p.line = line_no;
    Instruction& inst = p.inst;
    inst.op = *op;
    inst.cmp = cmp;

    switch (info.format) {
      case Format::kRRR: {
        const bool three_src =
            *op == Opcode::IMAD || *op == Opcode::FFMA || *op == Opcode::SEL;
        const std::size_t expect = three_src ? 4u : 3u;
        if (ops.size() != expect) {
          Fail(line_no, mnemonic + " expects " + std::to_string(expect) +
                            " operands");
        }
        inst.dst = static_cast<std::uint8_t>(ParseReg(ops[0], line_no));
        inst.src_a = static_cast<std::uint8_t>(ParseReg(ops[1], line_no));
        if (IsRegToken(ops[2])) {
          inst.src_b = static_cast<std::uint8_t>(ParseReg(ops[2], line_no));
        } else {
          inst.has_imm = true;
          inst.imm = ParseImm(ops[2], line_no);
        }
        if (three_src) {
          if (inst.has_imm) Fail(line_no, "immediate not allowed with 3 sources");
          inst.src_c = static_cast<std::uint8_t>(ParseReg(ops[3], line_no));
        }
        break;
      }
      case Format::kRRI: {
        if (ops.size() != 3) Fail(line_no, mnemonic + " expects 3 operands");
        inst.dst = static_cast<std::uint8_t>(ParseReg(ops[0], line_no));
        inst.src_a = static_cast<std::uint8_t>(ParseReg(ops[1], line_no));
        inst.has_imm = true;
        inst.imm = ParseImm(ops[2], line_no);
        break;
      }
      case Format::kRI: {
        if (ops.size() != 2) Fail(line_no, mnemonic + " expects 2 operands");
        inst.dst = static_cast<std::uint8_t>(ParseReg(ops[0], line_no));
        inst.has_imm = true;
        if (*op == Opcode::S2R) {
          const auto sr = SpecialRegFromName(ops[1]);
          if (!sr) Fail(line_no, "unknown special register '" + std::string(ops[1]) + "'");
          inst.imm = static_cast<std::uint32_t>(*sr);
        } else {
          inst.imm = ParseImm(ops[1], line_no);
        }
        break;
      }
      case Format::kRR: {
        if (ops.size() != 2) Fail(line_no, mnemonic + " expects 2 operands");
        inst.dst = static_cast<std::uint8_t>(ParseReg(ops[0], line_no));
        inst.src_a = static_cast<std::uint8_t>(ParseReg(ops[1], line_no));
        break;
      }
      case Format::kSetp: {
        if (ops.size() != 3) Fail(line_no, mnemonic + " expects 3 operands");
        inst.dst = static_cast<std::uint8_t>(ParsePredReg(ops[0], line_no));
        inst.src_a = static_cast<std::uint8_t>(ParseReg(ops[1], line_no));
        if (IsRegToken(ops[2])) {
          inst.src_b = static_cast<std::uint8_t>(ParseReg(ops[2], line_no));
        } else {
          inst.has_imm = true;
          inst.imm = ParseImm(ops[2], line_no);
        }
        break;
      }
      case Format::kMem: {
        if (ops.size() != 2) Fail(line_no, mnemonic + " expects 2 operands");
        const bool is_store = info.writes_memory;
        const std::string_view ref = is_store ? ops[0] : ops[1];
        const std::string_view reg = is_store ? ops[1] : ops[0];
        const auto [addr_reg, offset] = ParseMemRef(ref, line_no);
        inst.dst = static_cast<std::uint8_t>(ParseReg(reg, line_no));
        inst.src_a = static_cast<std::uint8_t>(addr_reg);
        inst.has_imm = true;
        inst.imm = offset;
        break;
      }
      case Format::kBranch: {
        if (ops.size() != 1) Fail(line_no, mnemonic + " expects a target");
        inst.has_imm = true;
        if (const auto v = ParseInt(ops[0])) {
          inst.imm = static_cast<std::uint32_t>(*v);
        } else {
          p.target_label = std::string(ops[0]);
        }
        break;
      }
      case Format::kPlain: {
        if (!ops.empty()) Fail(line_no, mnemonic + " takes no operands");
        break;
      }
    }

    if (predicated) inst = WithPred(inst, pred_reg, pred_neg);
    pending.push_back(std::move(p));
  }

  // Second pass: resolve label targets.
  for (auto& p : pending) {
    if (!p.target_label.empty()) {
      const auto it = labels.find(p.target_label);
      if (it == labels.end()) {
        Fail(p.line, "undefined label '" + p.target_label + "'");
      }
      p.inst.imm = it->second;
    }
    prog.Append(p.inst);
  }

  prog.Validate();
  return prog;
}

}  // namespace gpustl::isa
