// SASS-like instruction-set definition for the FlexGripPlus-style GPU model.
//
// FlexGripPlus supports 52 assembly instructions of the NVIDIA G80 SASS
// (Streaming ASSembler) language. This module defines an open 52-opcode
// instruction set with the same structure: integer/logic ALU ops executed by
// the SP cores, FP32 ops, transcendental ops executed by the SFUs, memory
// accesses over the GPU memory spaces, and SIMT control flow.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace gpustl::isa {

/// All 52 opcodes of the modelled SASS subset.
enum class Opcode : std::uint8_t {
  // Integer ALU (SP cores).
  IADD,
  ISUB,
  IMUL,
  IMAD,
  IMIN,
  IMAX,
  IABS,
  INEG,
  IADD32I,
  // Logic / shift (SP cores).
  AND,
  OR,
  XOR,
  NOT,
  SHL,
  SHR,
  SAR,
  // Compare / select.
  ISETP,
  FSETP,
  SEL,
  // FP32 (SP FPU lanes).
  FADD,
  FMUL,
  FFMA,
  FMIN,
  FMAX,
  FABS,
  FNEG,
  F2I,
  I2F,
  // Transcendental (SFU).
  RCP,
  RSQ,
  SIN,
  COS,
  LG2,
  EX2,
  // Moves / special registers.
  MOV,
  MOV32I,
  S2R,
  // Memory.
  LDG,  // load global
  STG,  // store global
  LDS,  // load shared
  STS,  // store shared
  LDC,  // load constant
  LDL,  // load local
  STL,  // store local
  // Control flow / synchronization.
  BRA,
  CAL,
  RET,
  EXIT,
  SSY,
  SYNC,
  BAR,
  NOP,

  kCount,
};

inline constexpr int kNumOpcodes = static_cast<int>(Opcode::kCount);
static_assert(kNumOpcodes == 52, "FlexGripPlus models 52 SASS instructions");

/// Functional unit that executes an opcode; drives which gate-level module
/// sees the instruction's operands as test patterns.
enum class ExecUnit : std::uint8_t {
  kSpInt,   // SP core integer/logic datapath
  kSpFp,    // SP core FP32 datapath
  kSfu,     // special function unit
  kMem,     // load/store unit
  kControl, // branch/sync handled by the SM controller
};

/// Operand-format class used by the encoder and the pseudorandom generators.
enum class Format : std::uint8_t {
  kRRR,    // dst, srcA, srcB (optionally srcC for IMAD/FFMA/SEL)
  kRRI,    // dst, srcA, imm32
  kRI,     // dst, imm32 (MOV32I, S2R)
  kRR,     // dst, srcA (unary)
  kSetp,   // pred dst, srcA, srcB-or-imm, cmp-op
  kMem,    // reg, [addrReg + offset]
  kBranch, // target (BRA/CAL/SSY)
  kPlain,  // no operands (RET/EXIT/SYNC/BAR/NOP)
};

/// Comparison operator for ISETP/FSETP (3-bit subfield of the encoding).
enum class CmpOp : std::uint8_t { kLT, kLE, kGT, kGE, kEQ, kNE };

/// Special registers readable via S2R (selector in the immediate field).
enum class SpecialReg : std::uint8_t {
  kTid,     // thread index within the block
  kCtaid,   // block index
  kNtid,    // threads per block
  kNctaid,  // number of blocks
  kLaneid,  // lane within the warp
  kWarpid,  // warp index within the block
};

/// Static per-opcode properties.
struct OpcodeInfo {
  std::string_view mnemonic;
  ExecUnit unit;
  Format format;
  bool writes_reg;      // produces a general-register result
  bool writes_pred;     // produces a predicate result
  bool reads_memory;
  bool writes_memory;
  bool is_branch;       // may redirect control flow
  int latency;          // execute-stage cycles in the SM timing model
};

/// Property lookup; valid for every opcode < kCount.
const OpcodeInfo& GetOpcodeInfo(Opcode op);

/// Mnemonic → opcode (case-insensitive). nullopt if unknown.
std::optional<Opcode> OpcodeFromMnemonic(std::string_view mnemonic);

/// Cmp-op suffix ("LT", "GE", ...) → CmpOp. nullopt if unknown.
std::optional<CmpOp> CmpOpFromName(std::string_view name);

/// CmpOp → suffix string.
std::string_view CmpOpName(CmpOp op);

/// SpecialReg → "SR_TID"-style name, and back.
std::string_view SpecialRegName(SpecialReg sr);
std::optional<SpecialReg> SpecialRegFromName(std::string_view name);

}  // namespace gpustl::isa
