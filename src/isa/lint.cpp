#include "isa/lint.h"

#include <algorithm>
#include <bitset>

#include "common/strutil.h"
#include "isa/cfg.h"

namespace gpustl::isa {
namespace {

/// Source registers an instruction reads (including store data and address
/// registers), as a (regs-read, has_pred-guard) summary.
struct Reads {
  std::vector<int> regs;
  bool reads_pred_guard = false;
};

Reads ReadsOf(const Instruction& inst) {
  Reads r;
  const OpcodeInfo& info = inst.info();
  r.reads_pred_guard = inst.predicated;
  switch (info.format) {
    case Format::kRRR: {
      r.regs.push_back(inst.src_a);
      if (!inst.has_imm) r.regs.push_back(inst.src_b);
      const bool three_src =
          inst.op == Opcode::IMAD || inst.op == Opcode::FFMA ||
          inst.op == Opcode::SEL;
      if (three_src && !inst.has_imm) r.regs.push_back(inst.src_c);
      break;
    }
    case Format::kRRI:
    case Format::kRR:
      r.regs.push_back(inst.src_a);
      break;
    case Format::kSetp:
      r.regs.push_back(inst.src_a);
      if (!inst.has_imm) r.regs.push_back(inst.src_b);
      break;
    case Format::kMem:
      r.regs.push_back(inst.src_a);                       // address
      if (info.writes_memory) r.regs.push_back(inst.dst);  // store data
      break;
    case Format::kRI:
    case Format::kBranch:
    case Format::kPlain:
      break;
  }
  return r;
}

}  // namespace

std::vector<LintFinding> Lint(const Program& prog) {
  std::vector<LintFinding> findings;
  const auto& code = prog.code();
  if (code.empty()) return findings;
  const Cfg cfg(prog);

  auto add = [&](LintSeverity sev, std::uint32_t instr, std::string msg) {
    findings.push_back({sev, instr, std::move(msg)});
  };

  // --- Reachability (W1) + E1 fall-off-end ---
  std::vector<bool> reachable_block(cfg.blocks().size(), false);
  {
    std::vector<std::uint32_t> work{0};
    reachable_block[0] = true;
    while (!work.empty()) {
      const std::uint32_t b = work.back();
      work.pop_back();
      for (std::uint32_t s : cfg.blocks()[b].succs) {
        if (!reachable_block[s]) {
          reachable_block[s] = true;
          work.push_back(s);
        }
      }
    }
  }
  for (std::uint32_t b = 0; b < cfg.blocks().size(); ++b) {
    const BasicBlock& bb = cfg.blocks()[b];
    if (!reachable_block[b]) {
      add(LintSeverity::kWarning, bb.begin,
          ::gpustl::Format("W1: instructions [%u,%u) are unreachable", bb.begin,
                 bb.end));
      continue;
    }
    // E1: a reachable block that falls through past the last instruction.
    if (bb.end == code.size()) {
      const Instruction& last = code[bb.end - 1];
      const bool terminates =
          last.op == Opcode::EXIT ||
          (last.op == Opcode::RET && !last.predicated) ||
          (last.op == Opcode::BRA && !last.predicated);
      if (!terminates) {
        add(LintSeverity::kError, bb.end - 1,
            "E1: control can fall off the end of the program (missing "
            "EXIT)");
      }
    }
  }

  // --- Definite-definition dataflow (W2) ---
  // defined[b] = registers definitely written on every path to the END of
  // block b. Meet over predecessors is intersection.
  const std::size_t nblocks = cfg.blocks().size();
  std::vector<std::bitset<64>> out_regs(nblocks);
  std::vector<std::bitset<4>> out_preds(nblocks);
  std::vector<bool> computed(nblocks, false);

  auto transfer = [&](std::uint32_t b, std::bitset<64> regs,
                      std::bitset<4> preds, bool report) {
    const BasicBlock& bb = cfg.blocks()[b];
    for (std::uint32_t i = bb.begin; i < bb.end; ++i) {
      const Instruction& inst = code[i];
      if (report) {
        for (int r : ReadsOf(inst).regs) {
          if (!regs.test(static_cast<std::size_t>(r))) {
            add(LintSeverity::kWarning, i,
                ::gpustl::Format("W2: R%d may be read before any write", r));
            regs.set(static_cast<std::size_t>(r));  // report once
          }
        }
        if (inst.predicated && !preds.test(inst.pred_reg)) {
          add(LintSeverity::kWarning, i,
              ::gpustl::Format("W2: P%d guard may be read before any SETP",
                     static_cast<int>(inst.pred_reg)));
          preds.set(inst.pred_reg);
        }
      }
      // Predicated writes are not definite.
      if (!inst.predicated) {
        if (inst.info().writes_reg && !inst.info().writes_memory) {
          regs.set(inst.dst);
        }
        if (inst.info().writes_pred) preds.set(inst.dst);
      }
    }
    return std::pair{regs, preds};
  };

  // Two fixed-point rounds then one reporting pass (loops converge fast on
  // the intersection lattice).
  for (int round = 0; round < 3; ++round) {
    const bool report = round == 2;
    for (std::uint32_t b = 0; b < nblocks; ++b) {
      if (!reachable_block[b]) continue;
      std::bitset<64> in_regs;
      std::bitset<4> in_preds;
      bool first = true;
      for (std::uint32_t p : cfg.blocks()[b].preds) {
        if (!reachable_block[p] || !computed[p]) continue;
        if (first) {
          in_regs = out_regs[p];
          in_preds = out_preds[p];
          first = false;
        } else {
          in_regs &= out_regs[p];
          in_preds &= out_preds[p];
        }
      }
      if (b == 0) {
        in_regs.reset();
        in_preds.reset();
      }
      const auto [r, q] = transfer(b, in_regs, in_preds, report);
      out_regs[b] = r;
      out_preds[b] = q;
      computed[b] = true;
    }
  }

  // --- Global read sets (W3, W4, W5) ---
  std::bitset<64> ever_read;
  std::bitset<4> pred_ever_written;
  for (const Instruction& inst : code) {
    for (int r : ReadsOf(inst).regs) ever_read.set(static_cast<std::size_t>(r));
    if (inst.info().writes_pred) pred_ever_written.set(inst.dst);
  }
  std::bitset<4> pred_reported;
  for (std::uint32_t i = 0; i < code.size(); ++i) {
    const Instruction& inst = code[i];
    if (inst.predicated && !pred_ever_written.test(inst.pred_reg) &&
        !pred_reported.test(inst.pred_reg)) {
      add(LintSeverity::kWarning, i,
          ::gpustl::Format("W3: P%d is consumed but no SETP ever writes it",
                 static_cast<int>(inst.pred_reg)));
      pred_reported.set(inst.pred_reg);
    }
    if (inst.info().writes_reg && !inst.info().writes_memory &&
        !ever_read.test(inst.dst)) {
      add(LintSeverity::kWarning, i,
          ::gpustl::Format("W4: R%d is written here but never read", inst.dst));
    }
    if (inst.info().format == Format::kMem) {
      bool addr_written = false;
      for (const Instruction& other : code) {
        if (other.info().writes_reg && !other.info().writes_memory &&
            other.dst == inst.src_a) {
          addr_written = true;
          break;
        }
      }
      if (!addr_written) {
        add(LintSeverity::kWarning, i,
            ::gpustl::Format("W5: address register R%d is never written "
                   "(effective address is the literal offset)",
                   inst.src_a));
      }
    }
  }

  std::stable_sort(findings.begin(), findings.end(),
                   [](const LintFinding& a, const LintFinding& b) {
                     return a.instr < b.instr;
                   });
  return findings;
}

std::string FormatFindings(const std::vector<LintFinding>& findings) {
  std::string out;
  for (const LintFinding& f : findings) {
    out += ::gpustl::Format("%u: %s: %s\n", f.instr,
                  f.severity == LintSeverity::kError ? "error" : "warning",
                  f.message.c_str());
  }
  return out;
}

}  // namespace gpustl::isa
