// Static PTP checks beyond Program::Validate(): the structural hygiene an
// STL maintainer wants before shipping a test program (or after compacting
// one). Pure analysis — no execution.
#pragma once

#include <string>
#include <vector>

#include "isa/program.h"

namespace gpustl::isa {

enum class LintSeverity { kWarning, kError };

struct LintFinding {
  LintSeverity severity = LintSeverity::kWarning;
  std::uint32_t instr = 0;  // instruction index the finding anchors to
  std::string message;

  bool operator==(const LintFinding&) const = default;
};

/// Runs all checks; findings are ordered by instruction index.
///
/// Errors:
///  * E1: control can fall off the end of the program (a reachable path
///        reaches the last instruction without EXIT/RET/backward BRA).
///
/// Warnings:
///  * W1: unreachable instructions (on no CFG path from the entry);
///  * W2: register read before any possible write (registers reset to 0,
///        so this is legal but usually a generator bug);
///  * W3: predicate guard consumed but never produced by any SETP;
///  * W4: register written but never read anywhere (dead code — the
///        compactor's prime food);
///  * W5: memory access whose address register is never written (the
///        effective address is just the literal offset).
std::vector<LintFinding> Lint(const Program& prog);

/// Renders findings as "index: severity: message" lines.
std::string FormatFindings(const std::vector<LintFinding>& findings);

}  // namespace gpustl::isa
