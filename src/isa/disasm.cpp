#include "isa/disasm.h"

#include "common/strutil.h"

namespace gpustl::isa {
namespace {

std::string Reg(int r) { return "R" + std::to_string(r); }
std::string Pred(int p) { return "P" + std::to_string(p); }
std::string Imm(std::uint32_t v) { return ::gpustl::Format("0x%x", v); }

}  // namespace

std::string Disassemble(const Instruction& inst) {
  const OpcodeInfo& info = inst.info();
  std::string out;
  if (inst.predicated) {
    out += "@";
    if (inst.pred_negated) out += "!";
    out += Pred(inst.pred_reg) + " ";
  }
  out += std::string(info.mnemonic);
  if (info.format == Format::kSetp) {
    out += ".";
    out += std::string(CmpOpName(inst.cmp));
  }

  switch (info.format) {
    case Format::kRRR: {
      out += " " + Reg(inst.dst) + ", " + Reg(inst.src_a) + ", ";
      out += inst.has_imm ? Imm(inst.imm) : Reg(inst.src_b);
      const bool three_src = inst.op == Opcode::IMAD ||
                             inst.op == Opcode::FFMA || inst.op == Opcode::SEL;
      if (three_src && !inst.has_imm) out += ", " + Reg(inst.src_c);
      break;
    }
    case Format::kRRI:
      out += " " + Reg(inst.dst) + ", " + Reg(inst.src_a) + ", " + Imm(inst.imm);
      break;
    case Format::kRI:
      if (inst.op == Opcode::S2R) {
        out += " " + Reg(inst.dst) + ", " +
               std::string(SpecialRegName(static_cast<SpecialReg>(inst.imm)));
      } else {
        out += " " + Reg(inst.dst) + ", " + Imm(inst.imm);
      }
      break;
    case Format::kRR:
      out += " " + Reg(inst.dst) + ", " + Reg(inst.src_a);
      break;
    case Format::kSetp:
      out += " " + Pred(inst.dst) + ", " + Reg(inst.src_a) + ", ";
      out += inst.has_imm ? Imm(inst.imm) : Reg(inst.src_b);
      break;
    case Format::kMem: {
      const std::string ref =
          "[" + Reg(inst.src_a) + "+" + Imm(inst.imm) + "]";
      if (info.writes_memory)
        out += " " + ref + ", " + Reg(inst.dst);
      else
        out += " " + Reg(inst.dst) + ", " + ref;
      break;
    }
    case Format::kBranch:
      out += " " + std::to_string(inst.imm);
      break;
    case Format::kPlain:
      break;
  }
  out += ";";
  return out;
}

std::string DisassembleProgram(const Program& prog) {
  std::string out;
  if (!prog.name().empty()) out += ".entry " + prog.name() + "\n";
  out += ".blocks " + std::to_string(prog.config().blocks) + "\n";
  out += ".threads " + std::to_string(prog.config().threads_per_block) + "\n";
  for (const auto& seg : prog.data()) {
    out += ".data " + Imm(seg.addr) + ":";
    for (std::uint32_t w : seg.words) out += " " + Imm(w);
    out += "\n";
  }
  for (std::size_t i = 0; i < prog.code().size(); ++i) {
    out += ::gpustl::Format("    %-40s // [%zu]\n",
                  Disassemble(prog.code()[i]).c_str(), i);
  }
  return out;
}

}  // namespace gpustl::isa
