#include "isa/program.h"

#include <algorithm>

#include "common/error.h"

namespace gpustl::isa {

std::size_t Program::Append(const Instruction& inst) {
  code_.push_back(inst);
  return code_.size() - 1;
}

std::size_t Program::DataWords() const {
  std::size_t total = 0;
  for (const auto& seg : data_) total += seg.words.size();
  return total;
}

Program Program::RemoveInstructions(
    const std::vector<std::size_t>& remove) const {
  // Build old-index -> new-index map; removed slots map to the next
  // surviving instruction (or one-past-the-end).
  std::vector<bool> removed(code_.size(), false);
  for (std::size_t idx : remove) {
    GPUSTL_ASSERT(idx < code_.size(), "remove index out of range");
    removed[idx] = true;
  }

  std::vector<std::uint32_t> new_index(code_.size() + 1, 0);
  std::uint32_t next = 0;
  for (std::size_t i = 0; i < code_.size(); ++i) {
    new_index[i] = next;
    if (!removed[i]) ++next;
  }
  new_index[code_.size()] = next;

  Program out(name_);
  out.config_ = config_;
  out.data_ = data_;
  out.code_.reserve(next);
  for (std::size_t i = 0; i < code_.size(); ++i) {
    if (removed[i]) continue;
    Instruction inst = code_[i];
    if (inst.info().format == Format::kBranch) {
      const std::size_t old_target = std::min<std::size_t>(inst.imm, code_.size());
      inst.imm = new_index[old_target];
    }
    out.code_.push_back(inst);
  }
  return out;
}

void Program::Validate() const {
  for (std::size_t i = 0; i < code_.size(); ++i) {
    const Instruction& inst = code_[i];
    const OpcodeInfo& info = inst.info();
    if (info.format == Format::kBranch && inst.imm > code_.size()) {
      throw AsmError("instruction " + std::to_string(i) +
                     ": branch target out of range");
    }
    if (info.writes_pred && inst.dst >= kNumPredRegs) {
      throw AsmError("instruction " + std::to_string(i) +
                     ": predicate destination out of range");
    }
  }
  if (config_.blocks <= 0 || config_.threads_per_block <= 0) {
    throw AsmError("kernel configuration must be positive");
  }
}

}  // namespace gpustl::isa
