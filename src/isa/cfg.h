// Control-flow graph over a PTP: basic blocks, dominators, natural loops.
//
// This is the analysis substrate for stage 1 of the compaction method
// (PTP partitioning): a Basic Block is "a group of instructions that are
// always executed in sequence", and the Admissible Region for Compaction
// (ARC) is every BB except those involved in *parametric* loops — loops
// whose iterative parameter is computed at run time rather than being a
// literal constant.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/program.h"

namespace gpustl::isa {

/// Half-open instruction range [begin, end) forming one basic block.
struct BasicBlock {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
  std::vector<std::uint32_t> succs;  // successor block ids
  std::vector<std::uint32_t> preds;  // predecessor block ids

  std::uint32_t size() const { return end - begin; }
  bool Contains(std::uint32_t instr) const {
    return instr >= begin && instr < end;
  }
};

/// A natural loop discovered from a back edge in the CFG.
struct Loop {
  std::uint32_t header = 0;              // header block id
  std::vector<std::uint32_t> blocks;     // all block ids in the loop body
  bool parametric = false;               // trip count is runtime-computed
};

/// Control-flow graph of a program.
class Cfg {
 public:
  /// Builds blocks, edges, dominators and loops. CAL/RET are treated as
  /// block terminators with a fall-through edge (the GPU model executes
  /// calls inline; this matches FlexGripPlus's single-level call support).
  explicit Cfg(const Program& prog);

  const std::vector<BasicBlock>& blocks() const { return blocks_; }
  const std::vector<Loop>& loops() const { return loops_; }

  /// Block id containing instruction index `instr`.
  std::uint32_t BlockOf(std::uint32_t instr) const;

  /// Immediate dominator of each block (entry block dominates itself).
  const std::vector<std::uint32_t>& idom() const { return idom_; }

  /// True if block `a` dominates block `b`.
  bool Dominates(std::uint32_t a, std::uint32_t b) const;

  /// Per-instruction mask: true for instructions inside a parametric loop.
  std::vector<bool> ParametricLoopMask() const;

  /// Per-instruction admissibility used by the reduction stage: instructions
  /// in BBs free of parametric loops (the paper's ARC), minus control-flow
  /// and synchronization instructions (which SB removal must never touch —
  /// they define the structure the SBs live in).
  std::vector<bool> AdmissibleMask() const;

  /// Fraction (0..1) of instructions inside the ARC (Table I's "ARC %"):
  /// the paper's BB-level criterion, i.e. everything outside parametric
  /// loops.
  double ArcFraction() const;

 private:
  void BuildBlocks(const Program& prog);
  void BuildEdges(const Program& prog);
  void ComputeDominators();
  void FindLoops(const Program& prog);
  bool LoopIsParametric(const Program& prog, const Loop& loop) const;

  const Program* prog_;
  std::vector<BasicBlock> blocks_;
  std::vector<std::uint32_t> block_of_;  // instruction index -> block id
  std::vector<std::uint32_t> idom_;
  std::vector<Loop> loops_;
};

}  // namespace gpustl::isa
