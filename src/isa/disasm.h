// Disassembler: renders instructions/programs back to assembler-accepted
// text. `Assemble(DisassembleProgram(p))` reproduces `p` exactly (branch
// targets are emitted as numeric absolute indices).
#pragma once

#include <string>

#include "isa/program.h"

namespace gpustl::isa {

/// Renders one instruction (no trailing newline).
std::string Disassemble(const Instruction& inst);

/// Renders a whole program including directives and data segments.
std::string DisassembleProgram(const Program& prog);

}  // namespace gpustl::isa
