// Two-pass assembler for the SASS-like assembly language.
//
// Syntax (one instruction per line, `//` or `#` comments, optional `;`):
//
//   .entry  imm_ptp            // program name
//   .blocks 1                  // grid size
//   .threads 32                // threads per block
//   .data 0x100: 1 2 3 0xffff  // global-memory initializer
//
//   start:                     // label
//       MOV32I R1, 0x10;
//       S2R    R2, SR_TID;
//       SHL    R3, R2, R4;
//       IADD32I R3, R3, 0x100;
//       LDG    R5, [R3+0x0];
//       ISETP.LT P0, R5, R2;
//   @P0 BRA    start;
//   @!P1 IADD  R6, R5, R2;
//       STG    [R3+0x40], R6;
//       EXIT;
#pragma once

#include <string_view>

#include "isa/program.h"

namespace gpustl::isa {

/// Assembles source text into a Program. Throws AsmError with a
/// line-numbered message on any syntax or semantic error.
Program Assemble(std::string_view source);

}  // namespace gpustl::isa
