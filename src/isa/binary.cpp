#include "isa/binary.h"

#include <cstring>
#include <istream>
#include <ostream>

#include "common/error.h"

namespace gpustl::isa {
namespace {

constexpr char kMagic[4] = {'G', 'P', 'T', 'P'};
constexpr std::uint32_t kVersion = 1;

void PutU32(std::ostream& os, std::uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  os.write(buf, 4);
}

void PutU64(std::ostream& os, std::uint64_t v) {
  PutU32(os, static_cast<std::uint32_t>(v));
  PutU32(os, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t GetU32(std::istream& is) {
  char buf[4];
  if (!is.read(buf, 4)) throw AsmError("binary: truncated stream");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(buf[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t GetU64(std::istream& is) {
  const std::uint64_t lo = GetU32(is);
  const std::uint64_t hi = GetU32(is);
  return lo | (hi << 32);
}

}  // namespace

void SaveBinary(std::ostream& os, const Program& prog) {
  os.write(kMagic, 4);
  PutU32(os, kVersion);
  PutU32(os, static_cast<std::uint32_t>(prog.config().blocks));
  PutU32(os, static_cast<std::uint32_t>(prog.config().threads_per_block));
  PutU32(os, static_cast<std::uint32_t>(prog.name().size()));
  os.write(prog.name().data(),
           static_cast<std::streamsize>(prog.name().size()));
  PutU32(os, static_cast<std::uint32_t>(prog.data().size()));
  for (const DataSegment& seg : prog.data()) {
    PutU32(os, seg.addr);
    PutU32(os, static_cast<std::uint32_t>(seg.words.size()));
    for (std::uint32_t w : seg.words) PutU32(os, w);
  }
  PutU32(os, static_cast<std::uint32_t>(prog.code().size()));
  for (const Instruction& inst : prog.code()) PutU64(os, inst.Encode());
  if (!os) throw Error("binary: write failed");
}

Program LoadBinary(std::istream& is) {
  char magic[4];
  if (!is.read(magic, 4) || std::memcmp(magic, kMagic, 4) != 0) {
    throw AsmError("binary: bad magic");
  }
  const std::uint32_t version = GetU32(is);
  if (version != kVersion) {
    throw AsmError("binary: unsupported version " + std::to_string(version));
  }

  Program prog;
  prog.config().blocks = static_cast<int>(GetU32(is));
  prog.config().threads_per_block = static_cast<int>(GetU32(is));

  const std::uint32_t name_len = GetU32(is);
  if (name_len > 4096) throw AsmError("binary: unreasonable name length");
  std::string name(name_len, '\0');
  if (name_len != 0 && !is.read(name.data(), name_len)) {
    throw AsmError("binary: truncated name");
  }
  prog.set_name(std::move(name));

  const std::uint32_t nseg = GetU32(is);
  if (nseg > 1'000'000) throw AsmError("binary: unreasonable segment count");
  for (std::uint32_t s = 0; s < nseg; ++s) {
    DataSegment seg;
    seg.addr = GetU32(is);
    const std::uint32_t nwords = GetU32(is);
    if (nwords > 100'000'000) throw AsmError("binary: unreasonable segment");
    seg.words.reserve(nwords);
    for (std::uint32_t w = 0; w < nwords; ++w) seg.words.push_back(GetU32(is));
    prog.data().push_back(std::move(seg));
  }

  const std::uint32_t ncode = GetU32(is);
  if (ncode > 100'000'000) throw AsmError("binary: unreasonable code size");
  for (std::uint32_t i = 0; i < ncode; ++i) {
    prog.Append(Instruction::Decode(GetU64(is)));
  }

  prog.Validate();
  return prog;
}

}  // namespace gpustl::isa
