#include "isa/opcode.h"

#include <array>

#include "common/error.h"
#include "common/strutil.h"

namespace gpustl::isa {
namespace {

constexpr int kAluLat = 1;
constexpr int kFpLat = 2;
constexpr int kSfuLat = 4;
constexpr int kMemLat = 8;
constexpr int kCtlLat = 2;

// Indexed by Opcode. Keep in the exact enum order.
constexpr std::array<OpcodeInfo, kNumOpcodes> kInfo = {{
    // mnemonic, unit, format, wr, wp, rm, wm, br, lat
    {"IADD", ExecUnit::kSpInt, Format::kRRR, true, false, false, false, false, kAluLat},
    {"ISUB", ExecUnit::kSpInt, Format::kRRR, true, false, false, false, false, kAluLat},
    {"IMUL", ExecUnit::kSpInt, Format::kRRR, true, false, false, false, false, kAluLat + 1},
    {"IMAD", ExecUnit::kSpInt, Format::kRRR, true, false, false, false, false, kAluLat + 1},
    {"IMIN", ExecUnit::kSpInt, Format::kRRR, true, false, false, false, false, kAluLat},
    {"IMAX", ExecUnit::kSpInt, Format::kRRR, true, false, false, false, false, kAluLat},
    {"IABS", ExecUnit::kSpInt, Format::kRR, true, false, false, false, false, kAluLat},
    {"INEG", ExecUnit::kSpInt, Format::kRR, true, false, false, false, false, kAluLat},
    {"IADD32I", ExecUnit::kSpInt, Format::kRRI, true, false, false, false, false, kAluLat},
    {"AND", ExecUnit::kSpInt, Format::kRRR, true, false, false, false, false, kAluLat},
    {"OR", ExecUnit::kSpInt, Format::kRRR, true, false, false, false, false, kAluLat},
    {"XOR", ExecUnit::kSpInt, Format::kRRR, true, false, false, false, false, kAluLat},
    {"NOT", ExecUnit::kSpInt, Format::kRR, true, false, false, false, false, kAluLat},
    {"SHL", ExecUnit::kSpInt, Format::kRRR, true, false, false, false, false, kAluLat},
    {"SHR", ExecUnit::kSpInt, Format::kRRR, true, false, false, false, false, kAluLat},
    {"SAR", ExecUnit::kSpInt, Format::kRRR, true, false, false, false, false, kAluLat},
    {"ISETP", ExecUnit::kSpInt, Format::kSetp, false, true, false, false, false, kAluLat},
    {"FSETP", ExecUnit::kSpFp, Format::kSetp, false, true, false, false, false, kFpLat},
    {"SEL", ExecUnit::kSpInt, Format::kRRR, true, false, false, false, false, kAluLat},
    {"FADD", ExecUnit::kSpFp, Format::kRRR, true, false, false, false, false, kFpLat},
    {"FMUL", ExecUnit::kSpFp, Format::kRRR, true, false, false, false, false, kFpLat},
    {"FFMA", ExecUnit::kSpFp, Format::kRRR, true, false, false, false, false, kFpLat + 1},
    {"FMIN", ExecUnit::kSpFp, Format::kRRR, true, false, false, false, false, kFpLat},
    {"FMAX", ExecUnit::kSpFp, Format::kRRR, true, false, false, false, false, kFpLat},
    {"FABS", ExecUnit::kSpFp, Format::kRR, true, false, false, false, false, kFpLat},
    {"FNEG", ExecUnit::kSpFp, Format::kRR, true, false, false, false, false, kFpLat},
    {"F2I", ExecUnit::kSpFp, Format::kRR, true, false, false, false, false, kFpLat},
    {"I2F", ExecUnit::kSpFp, Format::kRR, true, false, false, false, false, kFpLat},
    {"RCP", ExecUnit::kSfu, Format::kRR, true, false, false, false, false, kSfuLat},
    {"RSQ", ExecUnit::kSfu, Format::kRR, true, false, false, false, false, kSfuLat},
    {"SIN", ExecUnit::kSfu, Format::kRR, true, false, false, false, false, kSfuLat},
    {"COS", ExecUnit::kSfu, Format::kRR, true, false, false, false, false, kSfuLat},
    {"LG2", ExecUnit::kSfu, Format::kRR, true, false, false, false, false, kSfuLat},
    {"EX2", ExecUnit::kSfu, Format::kRR, true, false, false, false, false, kSfuLat},
    {"MOV", ExecUnit::kSpInt, Format::kRR, true, false, false, false, false, kAluLat},
    {"MOV32I", ExecUnit::kSpInt, Format::kRI, true, false, false, false, false, kAluLat},
    {"S2R", ExecUnit::kSpInt, Format::kRI, true, false, false, false, false, kAluLat},
    {"LDG", ExecUnit::kMem, Format::kMem, true, false, true, false, false, kMemLat},
    {"STG", ExecUnit::kMem, Format::kMem, false, false, false, true, false, kMemLat},
    {"LDS", ExecUnit::kMem, Format::kMem, true, false, true, false, false, kMemLat / 2},
    {"STS", ExecUnit::kMem, Format::kMem, false, false, false, true, false, kMemLat / 2},
    {"LDC", ExecUnit::kMem, Format::kMem, true, false, true, false, false, kMemLat / 2},
    {"LDL", ExecUnit::kMem, Format::kMem, true, false, true, false, false, kMemLat},
    {"STL", ExecUnit::kMem, Format::kMem, false, false, false, true, false, kMemLat},
    {"BRA", ExecUnit::kControl, Format::kBranch, false, false, false, false, true, kCtlLat},
    {"CAL", ExecUnit::kControl, Format::kBranch, false, false, false, false, true, kCtlLat},
    {"RET", ExecUnit::kControl, Format::kPlain, false, false, false, false, true, kCtlLat},
    {"EXIT", ExecUnit::kControl, Format::kPlain, false, false, false, false, true, kCtlLat},
    {"SSY", ExecUnit::kControl, Format::kBranch, false, false, false, false, false, kCtlLat},
    {"SYNC", ExecUnit::kControl, Format::kPlain, false, false, false, false, true, kCtlLat},
    {"BAR", ExecUnit::kControl, Format::kPlain, false, false, false, false, false, kCtlLat},
    {"NOP", ExecUnit::kControl, Format::kPlain, false, false, false, false, false, 1},
}};

constexpr std::array<std::string_view, 6> kCmpNames = {"LT", "LE", "GT",
                                                       "GE", "EQ", "NE"};
constexpr std::array<std::string_view, 6> kSpecialNames = {
    "SR_TID", "SR_CTAID", "SR_NTID", "SR_NCTAID", "SR_LANEID", "SR_WARPID"};

}  // namespace

const OpcodeInfo& GetOpcodeInfo(Opcode op) {
  const auto idx = static_cast<std::size_t>(op);
  GPUSTL_ASSERT(idx < kInfo.size(), "opcode out of range");
  return kInfo[idx];
}

std::optional<Opcode> OpcodeFromMnemonic(std::string_view mnemonic) {
  const std::string upper = ToUpper(mnemonic);
  for (int i = 0; i < kNumOpcodes; ++i) {
    if (kInfo[static_cast<std::size_t>(i)].mnemonic == upper)
      return static_cast<Opcode>(i);
  }
  return std::nullopt;
}

std::optional<CmpOp> CmpOpFromName(std::string_view name) {
  const std::string upper = ToUpper(name);
  for (std::size_t i = 0; i < kCmpNames.size(); ++i) {
    if (kCmpNames[i] == upper) return static_cast<CmpOp>(i);
  }
  return std::nullopt;
}

std::string_view CmpOpName(CmpOp op) {
  return kCmpNames[static_cast<std::size_t>(op)];
}

std::string_view SpecialRegName(SpecialReg sr) {
  return kSpecialNames[static_cast<std::size_t>(sr)];
}

std::optional<SpecialReg> SpecialRegFromName(std::string_view name) {
  const std::string upper = ToUpper(name);
  for (std::size_t i = 0; i < kSpecialNames.size(); ++i) {
    if (kSpecialNames[i] == upper) return static_cast<SpecialReg>(i);
  }
  return std::nullopt;
}

}  // namespace gpustl::isa
