#include "atpg/podem.h"

#include <algorithm>

#include "common/error.h"

namespace gpustl::atpg {

using fault::Fault;
using netlist::CellType;
using netlist::Gate;
using netlist::kMaxFanin;
using netlist::NetId;
using netlist::Netlist;

namespace {

constexpr std::uint8_t kV0 = 0;
constexpr std::uint8_t kV1 = 1;
constexpr std::uint8_t kVX = 2;

/// 3-valued cell evaluation by completion enumeration: every X input is
/// expanded both ways; if all completions agree the output is defined.
/// Cells have at most 4 inputs, so at most 16 completions.
std::uint8_t Eval3(CellType type, const std::uint8_t* in, int n) {
  // Fast path: fully-defined inputs evaluate with one table lookup.
  // Otherwise X inputs are expanded both ways in a single bit-parallel
  // EvalCell call: each X input contributes its two completions on
  // different word bits (2^x <= 16 completions, packed into one word).
  int x_pos[kMaxFanin];
  int x_count = 0;
  std::uint64_t words[kMaxFanin];
  for (int i = 0; i < n; ++i) {
    if (in[i] == kVX) {
      x_pos[x_count++] = i;
      words[i] = 0;
    } else {
      words[i] = in[i] == kV1 ? ~0ull : 0ull;
    }
  }
  if (x_count == 0) {
    return static_cast<std::uint8_t>(netlist::EvalCell(type, words) & 1);
  }
  const int combos = 1 << x_count;
  // Lane c carries completion c: X input k reads bit k of c.
  for (int k = 0; k < x_count; ++k) {
    std::uint64_t lane_bits = 0;
    for (int c = 0; c < combos; ++c) {
      if ((c >> k) & 1) lane_bits |= 1ull << c;
    }
    // Defined inputs already replicate across all lanes (0 or ~0).
    words[x_pos[k]] = lane_bits;
  }
  const std::uint64_t out = netlist::EvalCell(type, words);
  const std::uint64_t mask = combos >= 64 ? ~0ull : ((1ull << combos) - 1);
  const std::uint64_t seen = out & mask;
  if (seen == 0) return kV0;
  if (seen == mask) return kV1;
  return kVX;
}

/// Controlling value / inversion per cell type for the backtrace heuristic.
/// Returns false when the cell has no single controlling value.
bool ControllingValue(CellType type, std::uint8_t* c, bool* inv) {
  switch (type) {
    case CellType::kAnd2: case CellType::kAnd3: case CellType::kAnd4:
      *c = kV0; *inv = false; return true;
    case CellType::kNand2: case CellType::kNand3: case CellType::kNand4:
      *c = kV0; *inv = true; return true;
    case CellType::kOr2: case CellType::kOr3: case CellType::kOr4:
      *c = kV1; *inv = false; return true;
    case CellType::kNor2: case CellType::kNor3: case CellType::kNor4:
      *c = kV1; *inv = true; return true;
    case CellType::kBuf:
      *c = kVX; *inv = false; return true;
    case CellType::kInv:
      *c = kVX; *inv = true; return true;
    default:
      return false;
  }
}

bool IsInverting(CellType type) {
  switch (type) {
    case CellType::kInv:
    case CellType::kNand2: case CellType::kNand3: case CellType::kNand4:
    case CellType::kNor2: case CellType::kNor3: case CellType::kNor4:
    case CellType::kXnor2:
    case CellType::kAoi21: case CellType::kAoi22:
    case CellType::kOai21: case CellType::kOai22:
      return true;
    default:
      return false;
  }
}

class PodemEngine {
 public:
  PodemEngine(const Netlist& nl, const Fault& f, const AtpgOptions& options)
      : nl_(nl), fault_(f), options_(options) {
    good_.assign(nl.gate_count(), kVX);
    faulty_.assign(nl.gate_count(), kVX);
    assign_.assign(nl.gate_count(), kVX);  // indexed by PI net id
  }

  AtpgResult Run() {
    AtpgResult result;
    Simulate();
    const bool found = Search();
    result.assignment.assign(nl_.num_inputs(), kVX);
    for (std::size_t i = 0; i < nl_.num_inputs(); ++i) {
      result.assignment[i] = assign_[nl_.inputs()[i]];
    }
    if (found) {
      result.status = AtpgStatus::kDetected;
    } else {
      result.status = aborted_ ? AtpgStatus::kAborted : AtpgStatus::kUntestable;
    }
    return result;
  }

 private:
  /// Full 3-valued good/faulty resimulation from the current PI assignment.
  void Simulate() {
    for (NetId pi : nl_.inputs()) {
      good_[pi] = assign_[pi];
      faulty_[pi] = assign_[pi];
    }
    if (fault_.pin == Fault::kOutputPin &&
        nl_.gate(fault_.gate).type == CellType::kInput) {
      faulty_[fault_.gate] = fault_.sa1 ? kV1 : kV0;
    }
    std::uint8_t in[kMaxFanin];
    for (NetId id : nl_.topo_order()) {
      const Gate& g = nl_.gate(id);
      const int n = g.fanin_count();
      for (int i = 0; i < n; ++i) in[i] = good_[g.fanin[i]];
      good_[id] = Eval3(g.type, in, n);

      for (int i = 0; i < n; ++i) {
        in[i] = (id == fault_.gate && i == fault_.pin)
                    ? (fault_.sa1 ? kV1 : kV0)
                    : faulty_[g.fanin[i]];
      }
      faulty_[id] = Eval3(g.type, in, n);
      if (id == fault_.gate && fault_.pin == Fault::kOutputPin) {
        faulty_[id] = fault_.sa1 ? kV1 : kV0;
      }
    }
  }

  bool Detected() const {
    for (NetId o : nl_.outputs()) {
      if (good_[o] != kVX && faulty_[o] != kVX && good_[o] != faulty_[o]) {
        return true;
      }
    }
    return false;
  }

  /// The net whose good value must become ~sa for the fault to activate.
  NetId SiteNet() const {
    return fault_.pin == Fault::kOutputPin
               ? fault_.gate
               : nl_.gate(fault_.gate).fanin[fault_.pin];
  }

  bool Activated() const {
    const std::uint8_t want = fault_.sa1 ? kV0 : kV1;
    return good_[SiteNet()] == want;
  }

  /// Finds the next objective (net, value). Returns false if the search
  /// space at this node is exhausted (no D-frontier / activation conflict).
  bool Objective(NetId* net, std::uint8_t* value) const {
    const NetId site = SiteNet();
    const std::uint8_t want = fault_.sa1 ? kV0 : kV1;
    if (good_[site] == kVX) {
      *net = site;
      *value = want;
      return true;
    }
    if (good_[site] != want) return false;  // activation conflict

    // For an input-pin fault the D exists only at the faulted pin and never
    // appears as a net difference, so the faulted gate itself is the first
    // D-frontier member while its output is still undefined.
    if (fault_.pin != Fault::kOutputPin &&
        (good_[fault_.gate] == kVX || faulty_[fault_.gate] == kVX)) {
      const Gate& g = nl_.gate(fault_.gate);
      std::uint8_t c;
      bool inv;
      std::uint8_t obj_value = kV1;
      if (ControllingValue(g.type, &c, &inv) && c != kVX) {
        obj_value = c == kV0 ? kV1 : kV0;
      }
      for (int i = 0; i < g.fanin_count(); ++i) {
        if (i != fault_.pin && good_[g.fanin[i]] == kVX) {
          *net = g.fanin[i];
          *value = obj_value;
          return true;
        }
      }
    }

    // D-frontier: a gate with a D on some input and an undefined output.
    for (NetId id : nl_.topo_order()) {
      if (good_[id] != kVX && faulty_[id] != kVX) continue;
      const Gate& g = nl_.gate(id);
      bool has_d = false;
      for (int i = 0; i < g.fanin_count(); ++i) {
        const NetId f = g.fanin[i];
        if (good_[f] != kVX && faulty_[f] != kVX && good_[f] != faulty_[f]) {
          has_d = true;
          break;
        }
      }
      if (!has_d) continue;
      // Objective: set an X input to the non-controlling value.
      std::uint8_t c;
      bool inv;
      std::uint8_t obj_value = kV1;
      if (ControllingValue(g.type, &c, &inv) && c != kVX) {
        obj_value = c == kV0 ? kV1 : kV0;  // non-controlling
      }
      for (int i = 0; i < g.fanin_count(); ++i) {
        if (good_[g.fanin[i]] == kVX) {
          *net = g.fanin[i];
          *value = obj_value;
          return true;
        }
      }
    }
    return false;
  }

  /// Maps an objective to an unassigned PI. Returns false on a dead end.
  bool Backtrace(NetId net, std::uint8_t value, NetId* pi,
                 std::uint8_t* pi_value) const {
    while (true) {
      const Gate& g = nl_.gate(net);
      if (g.type == CellType::kInput) {
        if (assign_[net] != kVX) return false;
        *pi = net;
        *pi_value = value;
        return true;
      }
      if (g.fanin_count() == 0) return false;  // constant: no path

      std::uint8_t c;
      bool inv;
      std::uint8_t next_value;
      if (ControllingValue(g.type, &c, &inv) && c != kVX) {
        const std::uint8_t v = inv ? (value == kV1 ? kV0 : kV1) : value;
        next_value = v == c ? c : (c == kV0 ? kV1 : kV0);
      } else {
        next_value = IsInverting(g.type) ? (value == kV1 ? kV0 : kV1) : value;
      }

      NetId next = netlist::kNoNet;
      for (int i = 0; i < g.fanin_count(); ++i) {
        if (good_[g.fanin[i]] == kVX) {
          next = g.fanin[i];
          break;
        }
      }
      if (next == netlist::kNoNet) return false;
      net = next;
      value = next_value;
    }
  }

  bool Search() {
    if (Detected()) return true;
    if (aborted_) return false;

    NetId obj_net;
    std::uint8_t obj_value;
    if (!Objective(&obj_net, &obj_value)) return false;

    NetId pi;
    std::uint8_t pi_value;
    if (!Backtrace(obj_net, obj_value, &pi, &pi_value)) return false;

    for (int attempt = 0; attempt < 2; ++attempt) {
      assign_[pi] = attempt == 0 ? pi_value : (pi_value == kV1 ? kV0 : kV1);
      Simulate();
      if (Search()) return true;
      if (aborted_) break;
      if (++backtracks_ > options_.backtrack_limit) {
        aborted_ = true;
        break;
      }
    }
    assign_[pi] = kVX;
    Simulate();
    return false;
  }

  const Netlist& nl_;
  const Fault fault_;
  const AtpgOptions& options_;
  std::vector<std::uint8_t> good_, faulty_, assign_;
  int backtracks_ = 0;
  bool aborted_ = false;
};

}  // namespace

AtpgResult GeneratePattern(const Netlist& nl, const Fault& f,
                           const AtpgOptions& options) {
  GPUSTL_ASSERT(nl.frozen(), "ATPG requires a frozen netlist");
  GPUSTL_ASSERT(nl.dffs().empty(), "ATPG supports combinational modules only");
  PodemEngine engine(nl, f, options);
  return engine.Run();
}

AtpgRunResult GeneratePatternSet(const Netlist& nl,
                                 const std::vector<Fault>& faults, Rng rng,
                                 const AtpgOptions& options) {
  AtpgRunResult run;
  const int width = static_cast<int>(nl.num_inputs());
  run.patterns = netlist::PatternSet(width);

  BitVec covered(faults.size(), false);
  const std::size_t wpp = run.patterns.words_per_pattern();
  std::vector<std::uint64_t> row(wpp);

  auto fixup = [&](std::uint64_t* r) {
    if (options.pattern_fixup) options.pattern_fixup(r);
    if (width % 64 != 0) r[wpp - 1] &= (1ull << (width % 64)) - 1;
  };

  // Phase 1 (standard ATPG tool flow): random patterns with fault
  // dropping; only patterns that contribute first detections are kept.
  for (int remaining = options.random_phase_patterns; remaining > 0;) {
    const int count = std::min(remaining, 64);
    remaining -= count;
    netlist::PatternSet batch(width);
    for (int p = 0; p < count; ++p) {
      for (auto& w : row) w = rng();
      fixup(row.data());
      batch.Add(static_cast<std::uint64_t>(p), row.data());
    }
    const auto sim = fault::RunFaultSim(nl, batch, faults, &covered,
                                        {.drop_detected = true});
    covered |= sim.detected_mask;
    for (std::size_t p = 0; p < batch.size(); ++p) {
      if (sim.detects_per_pattern[p] > 0) {
        run.patterns.Add(run.patterns.size(), batch.Row(p));
        ++run.random_patterns;
      }
    }
  }

  // Phase 2: PODEM per surviving fault, with collateral dropping through
  // periodic batch fault simulation. Coverage is confirmed strictly by the
  // fault simulator (the fixup may legitimately invalidate a pattern).
  netlist::PatternSet batch(width);
  auto flush_batch = [&] {
    if (batch.empty()) return;
    const auto sim = fault::RunFaultSim(nl, batch, faults, &covered,
                                        {.drop_detected = true});
    covered |= sim.detected_mask;
    for (std::size_t p = 0; p < batch.size(); ++p) {
      run.patterns.Add(run.patterns.size(), batch.Row(p));
      ++run.deterministic_patterns;
    }
    batch = netlist::PatternSet(width);
  };

  std::size_t attempts = 0;
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    if (covered.Get(fi)) continue;
    if (options.deterministic_fault_budget != 0 &&
        attempts >= options.deterministic_fault_budget) {
      ++run.aborted;  // out of budget: left to collateral detection
      continue;
    }
    ++attempts;
    const AtpgResult res = GeneratePattern(nl, faults[fi], options);
    switch (res.status) {
      case AtpgStatus::kUntestable:
        ++run.untestable;
        continue;
      case AtpgStatus::kAborted:
        ++run.aborted;
        continue;
      case AtpgStatus::kDetected:
        break;
    }
    std::fill(row.begin(), row.end(), 0);
    for (std::size_t i = 0; i < nl.num_inputs(); ++i) {
      const std::uint8_t v = res.assignment[i];
      const bool bit = v == kVX ? rng.chance(0.5) : v == kV1;
      if (bit) row[i / 64] |= 1ull << (i % 64);
    }
    fixup(row.data());
    batch.Add(batch.size(), row.data());
    if (batch.size() == 64) flush_batch();
  }
  flush_batch();

  run.detected = covered.Count();
  return run;
}

}  // namespace gpustl::atpg
