// PODEM automatic test-pattern generation for single stuck-at faults.
//
// The paper's TPGEN and SFU_IMM PTPs are built from ATPG tool patterns that
// a parser converts into GPU instructions. This module is that ATPG tool:
// a classic PODEM (path-oriented decision making) over the gate-level
// modules, with 3-valued good/faulty simulation, D-frontier objectives,
// backtrace to primary inputs, bounded backtracking, random fill of
// unassigned inputs, and inter-pattern fault dropping via the PPSFP fault
// simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "fault/fault.h"
#include "fault/faultsim.h"
#include "netlist/patterns.h"

namespace gpustl::atpg {

enum class AtpgStatus : std::uint8_t {
  kDetected,    // a pattern was found
  kUntestable,  // proven redundant within the search budget semantics
  kAborted,     // backtrack limit exhausted
};

struct AtpgOptions {
  /// Maximum PODEM backtracks per fault before aborting.
  int backtrack_limit = 100;

  /// Random-pattern phase before the deterministic one (standard ATPG tool
  /// flow): up to this many random patterns are fault-simulated first, and
  /// the ones that contribute first detections are kept in the output set.
  /// PODEM then runs only on the surviving faults. 0 disables the phase.
  int random_phase_patterns = 512;

  /// Upper bound on deterministic-phase PODEM attempts (0 = unlimited).
  /// Faults beyond the budget are left to collateral detection and counted
  /// as aborted. Caps the run time on redundancy-heavy modules.
  std::size_t deterministic_fault_budget = 0;

  /// Canonicalizes each pattern after don't-care fill and BEFORE fault
  /// simulation — the hook the GPU-module flows use to keep patterns inside
  /// the instruction-expressible input space (e.g. clamping the SFU
  /// function selector to the six transcendental opcodes). May be empty.
  /// `row` points at words_per_pattern() words.
  std::function<void(std::uint64_t* row)> pattern_fixup;
};

/// Per-fault generation result. `assignment[i]` is 0/1 for assigned primary
/// input i and 2 for don't-care.
struct AtpgResult {
  AtpgStatus status = AtpgStatus::kAborted;
  std::vector<std::uint8_t> assignment;
};

/// Generates one test pattern for `fault` (combinational netlists only).
AtpgResult GeneratePattern(const netlist::Netlist& nl, const fault::Fault& f,
                           const AtpgOptions& options = {});

/// Result of a full ATPG run over a fault list.
struct AtpgRunResult {
  netlist::PatternSet patterns;  // cc stamps are pattern ordinals
  std::size_t detected = 0;      // faults covered (incl. collateral drops)
  std::size_t untestable = 0;
  std::size_t aborted = 0;       // PODEM backtrack-limit hits
  std::size_t random_patterns = 0;        // kept from the random phase
  std::size_t deterministic_patterns = 0; // emitted by PODEM
};

/// Runs PODEM over the whole fault list with fault dropping: each generated
/// pattern (don't-cares filled from `rng`) is fault-simulated against the
/// remaining faults in 64-pattern batches so collaterally-detected faults
/// are skipped. Deterministic given the seed.
AtpgRunResult GeneratePatternSet(const netlist::Netlist& nl,
                                 const std::vector<fault::Fault>& faults,
                                 Rng rng, const AtpgOptions& options = {});

}  // namespace gpustl::atpg
