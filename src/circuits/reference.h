// Bit-exact software reference models of the gate-level modules.
//
// Each gate-level module (Decoder Unit, SP integer datapath, SFU datapath)
// has a pure-function reference here that computes exactly what the netlist
// computes. The references serve three roles:
//  * property tests: netlist-vs-reference equivalence over random sweeps,
//  * the GPU functional model executes SP integer ops through SpIntOp so
//    architectural results and gate-level patterns always agree,
//  * documentation of the module semantics.
#pragma once

#include <array>
#include <cstdint>

#include "isa/opcode.h"

namespace gpustl::circuits {

/// Result of the SP integer datapath.
struct SpResult {
  std::uint32_t value = 0;
  bool pred = false;  // ISETP outcome (valid only for ISETP)
};

/// SP integer/logic datapath semantics.
///
/// Notes matching the gate-level implementation:
///  * IMUL/IMAD multiply the LOW 16-BIT halves of both operands into a full
///    32-bit product (the G80 multiplier is a narrow datapath; FlexGripPlus
///    models it similarly).
///  * Shift amounts are taken modulo 32.
///  * IMIN/IMAX and the LT/LE/GT/GE comparisons are signed.
///  * SEL is the bitwise select (a & c) | (b & ~c).
///  * MOV passes operand A; MOV32I/S2R pass operand B (the resolved
///    immediate/special value).
SpResult SpIntOp(isa::Opcode op, isa::CmpOp cmp, std::uint32_t a,
                 std::uint32_t b, std::uint32_t c);

/// SFU datapath semantics: fixed-point quadratic interpolation
/// y = (c0 << 16) + c1*xl + c2*hi16(xl*xl)  (mod 2^32), with the
/// coefficients c0,c1,c2 derived from the high operand half and the
/// function selector by the mixing network described in sfu.cpp.
std::uint32_t SfuOp(int fsel, std::uint32_t x);

/// Decoded control-signal vector produced by the Decoder Unit for one
/// 64-bit instruction word. Bit layout matches BuildDecoderUnit's output
/// order (DuOutputIndex); packed LSB-first across the two words
/// (bit i of the vector = word[i/64] >> (i%64)).
std::array<std::uint64_t, 3> DuReference(std::uint64_t instr_word);

}  // namespace gpustl::circuits
