// Gate-level Special Function Unit (SFU) datapath.
//
// The G80 SFU evaluates transcendental functions (RCP, RSQ, SIN, COS, LG2,
// EX2) by quadratic interpolation: the operand's high bits index coefficient
// tables and the low bits enter a squarer/multiplier/adder pipeline. This
// module reproduces that structure as a combinational datapath:
//
//   xh = x[31:16], xl = x[15:0]
//   c0 = xh ^ rotl(xh,3) ^ K          (coefficient-generation mixing
//   c1 = (xh & rotl(xh,5)) ^ ~K        network standing in for the ROM
//   c2 = (xh | rotl(xh,7)) ^ rotl(K,1) tables; K = fsel bits replicated)
//   sq = xl * xl;  sqh = sq[31:16]
//   y  = (c0 << 16) + c1*xl + c2*sqh   (mod 2^32)
//
// Input order:  fsel[0..2], x[0..31]   (35)
// Output order: y[0..31]               (32)
//
// SfuOp() in reference.h is the bit-exact software model. Because the
// interpolation pipeline has no inter-operation state, there is no data
// dependence between SFU test operations — the property the paper uses to
// explain why SFU_IMM's fault coverage is unaffected by compaction.
#pragma once

#include "netlist/netlist.h"

namespace gpustl::circuits {

inline constexpr int kSfuNumInputs = 3 + 32;
inline constexpr int kSfuNumOutputs = 32;

/// Builds and freezes the SFU datapath netlist.
netlist::Netlist BuildSfu();

/// Packs an SFU input pattern (fsel, x) into one 64-bit word
/// (bits 0..2 = fsel, bits 3..34 = x).
std::uint64_t EncodeSfuPattern(int fsel, std::uint32_t x);

}  // namespace gpustl::circuits
