#include "circuits/sfu.h"

#include "circuits/blocks.h"
#include "common/error.h"

namespace gpustl::circuits {

using netlist::CellType;
using netlist::Netlist;

namespace {

/// Pure wiring: rotate-left of a 16-bit bus.
Bus RotL16(const Bus& a, int k) {
  GPUSTL_ASSERT(a.size() == 16, "RotL16 needs a 16-bit bus");
  Bus out(16);
  for (int i = 0; i < 16; ++i) {
    out[static_cast<std::size_t>((i + k) % 16)] = a[static_cast<std::size_t>(i)];
  }
  return out;
}

}  // namespace

netlist::Netlist BuildSfu() {
  Netlist nl("sfu");
  const Bus fsel = netlist::AddInputBus(nl, "fsel", 3);
  const Bus x = netlist::AddInputBus(nl, "x", 32);

  const Bus xl = Slice(x, 0, 16);
  const Bus xh = Slice(x, 16, 16);

  // K = fsel bits replicated across 16 bits (bit i = fsel[i % 3]).
  Bus k(16);
  for (int i = 0; i < 16; ++i) {
    k[static_cast<std::size_t>(i)] = fsel[static_cast<std::size_t>(i % 3)];
  }

  // Coefficient-generation mixing network (ROM-table stand-in).
  const Bus c0 = XorBus(nl, XorBus(nl, xh, RotL16(xh, 3)), k);
  const Bus c1 = XorBus(nl, AndBus(nl, xh, RotL16(xh, 5)), NotBus(nl, k));
  const Bus c2 = XorBus(nl, OrBus(nl, xh, RotL16(xh, 7)), RotL16(k, 1));

  // Interpolation pipeline.
  const Bus sq = Multiplier(nl, xl, xl);        // 32-bit square
  const Bus sqh = Slice(sq, 16, 16);            // high half
  const Bus m1 = Multiplier(nl, c1, xl);        // c1 * xl (32 bits)
  const Bus m2 = Multiplier(nl, c2, sqh);       // c2 * sqh (32 bits)

  const netlist::NetId zero = ConstBit(nl, false);
  Bus c0_shifted = ConstWord(nl, 0, 16);
  c0_shifted.insert(c0_shifted.end(), c0.begin(), c0.end());  // c0 << 16

  const Bus sum1 = Adder(nl, c0_shifted, m1, zero);
  const Bus y = Adder(nl, sum1, m2, zero);

  netlist::MarkOutputBus(nl, y, "y");

  GPUSTL_ASSERT(static_cast<int>(nl.num_inputs()) == kSfuNumInputs,
                "SFU input arity drifted");
  GPUSTL_ASSERT(static_cast<int>(nl.num_outputs()) == kSfuNumOutputs,
                "SFU output arity drifted");
  nl.Freeze();
  return nl;
}

std::uint64_t EncodeSfuPattern(int fsel, std::uint32_t x) {
  return (static_cast<std::uint64_t>(fsel) & 0x7u) |
         (static_cast<std::uint64_t>(x) << 3);
}

}  // namespace gpustl::circuits
