#include "circuits/blocks.h"

#include "common/error.h"

namespace gpustl::circuits {

using netlist::CellType;

NetId ConstBit(Netlist& nl, bool value) {
  return nl.AddGate(value ? CellType::kConst1 : CellType::kConst0, {});
}

Bus ConstWord(Netlist& nl, std::uint64_t value, int width) {
  Bus out;
  out.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) out.push_back(ConstBit(nl, (value >> i) & 1));
  return out;
}

namespace {
Bus Elementwise(Netlist& nl, CellType type, const Bus& a, const Bus& b) {
  GPUSTL_ASSERT(a.size() == b.size(), "bus width mismatch");
  Bus out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.push_back(nl.AddGate(type, {a[i], b[i]}));
  }
  return out;
}
}  // namespace

Bus NotBus(Netlist& nl, const Bus& a) {
  Bus out;
  out.reserve(a.size());
  for (NetId n : a) out.push_back(nl.AddGate(CellType::kInv, {n}));
  return out;
}

Bus AndBus(Netlist& nl, const Bus& a, const Bus& b) {
  return Elementwise(nl, CellType::kAnd2, a, b);
}
Bus OrBus(Netlist& nl, const Bus& a, const Bus& b) {
  return Elementwise(nl, CellType::kOr2, a, b);
}
Bus XorBus(Netlist& nl, const Bus& a, const Bus& b) {
  return Elementwise(nl, CellType::kXor2, a, b);
}

Bus MuxBus(Netlist& nl, NetId sel, const Bus& a, const Bus& b) {
  GPUSTL_ASSERT(a.size() == b.size(), "mux bus width mismatch");
  Bus out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.push_back(nl.AddGate(CellType::kMux2, {a[i], b[i], sel}));
  }
  return out;
}

namespace {
NetId ReduceTree(Netlist& nl, Bus bits, CellType two, CellType three,
                 CellType four) {
  GPUSTL_ASSERT(!bits.empty(), "reduction over empty bus");
  while (bits.size() > 1) {
    Bus next;
    std::size_t i = 0;
    while (i < bits.size()) {
      const std::size_t left = bits.size() - i;
      if (left >= 4) {
        next.push_back(nl.AddGate(four, {bits[i], bits[i + 1], bits[i + 2], bits[i + 3]}));
        i += 4;
      } else if (left == 3) {
        next.push_back(nl.AddGate(three, {bits[i], bits[i + 1], bits[i + 2]}));
        i += 3;
      } else if (left == 2) {
        next.push_back(nl.AddGate(two, {bits[i], bits[i + 1]}));
        i += 2;
      } else {
        next.push_back(bits[i]);
        i += 1;
      }
    }
    bits = std::move(next);
  }
  return bits[0];
}
}  // namespace

NetId ReduceAnd(Netlist& nl, Bus bits) {
  return ReduceTree(nl, std::move(bits), CellType::kAnd2, CellType::kAnd3,
                    CellType::kAnd4);
}

NetId ReduceOr(Netlist& nl, Bus bits) {
  return ReduceTree(nl, std::move(bits), CellType::kOr2, CellType::kOr3,
                    CellType::kOr4);
}

NetId EqualsConst(Netlist& nl, const Bus& a, std::uint64_t value) {
  Bus terms;
  terms.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    terms.push_back((value >> i) & 1
                        ? a[i]
                        : nl.AddGate(CellType::kInv, {a[i]}));
  }
  return ReduceAnd(nl, std::move(terms));
}

NetId EqualsBus(Netlist& nl, const Bus& a, const Bus& b) {
  GPUSTL_ASSERT(a.size() == b.size(), "equality width mismatch");
  Bus terms;
  terms.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    terms.push_back(nl.AddGate(CellType::kXnor2, {a[i], b[i]}));
  }
  return ReduceAnd(nl, std::move(terms));
}

Bus Adder(Netlist& nl, const Bus& a, const Bus& b, NetId carry_in,
          NetId* carry_out) {
  GPUSTL_ASSERT(a.size() == b.size(), "adder width mismatch");
  Bus sum;
  sum.reserve(a.size());
  NetId carry = carry_in;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const NetId axb = nl.AddGate(CellType::kXor2, {a[i], b[i]});
    sum.push_back(nl.AddGate(CellType::kXor2, {axb, carry}));
    // carry = (a & b) | (carry & (a ^ b)); realized as AOI + INV.
    const NetId aoi = nl.AddGate(CellType::kAoi22, {a[i], b[i], carry, axb});
    carry = nl.AddGate(CellType::kInv, {aoi});
  }
  if (carry_out != nullptr) *carry_out = carry;
  return sum;
}

Bus Subtractor(Netlist& nl, const Bus& a, const Bus& b, NetId* no_borrow) {
  // a - b = a + ~b + 1. Carry-out == 1 iff a >= b (unsigned).
  const Bus nb = NotBus(nl, b);
  NetId carry_out = netlist::kNoNet;
  Bus diff = Adder(nl, a, nb, ConstBit(nl, true), &carry_out);
  if (no_borrow != nullptr) *no_borrow = carry_out;
  return diff;
}

Bus Negate(Netlist& nl, const Bus& a) {
  const Bus na = NotBus(nl, a);
  return Adder(nl, na, ConstWord(nl, 0, static_cast<int>(a.size())),
               ConstBit(nl, true));
}

NetId LessUnsigned(Netlist& nl, const Bus& a, const Bus& b) {
  NetId no_borrow = netlist::kNoNet;
  Subtractor(nl, a, b, &no_borrow);
  return nl.AddGate(CellType::kInv, {no_borrow});  // a < b iff borrow
}

NetId LessSigned(Netlist& nl, const Bus& a, const Bus& b) {
  // a < b  <=>  (a - b) overflow-adjusted sign.
  GPUSTL_ASSERT(!a.empty() && a.size() == b.size(), "cmp width mismatch");
  const Bus diff = Subtractor(nl, a, b, nullptr);
  const NetId sa = a.back();
  const NetId sb = b.back();
  const NetId sd = diff.back();
  // less = (sa & !sb) | ((sa ^ sb ? 0 : 1) ? ... ) Classic: less = sd XOR overflow;
  // overflow = (sa ^ sb) & (sa ^ sd).
  const NetId sab = nl.AddGate(CellType::kXor2, {sa, sb});
  const NetId sad = nl.AddGate(CellType::kXor2, {sa, sd});
  const NetId ovf = nl.AddGate(CellType::kAnd2, {sab, sad});
  return nl.AddGate(CellType::kXor2, {sd, ovf});
}

Bus BarrelShifter(Netlist& nl, const Bus& a, const Bus& amount, ShiftDir dir,
                  bool arithmetic) {
  const std::size_t width = a.size();
  GPUSTL_ASSERT((width & (width - 1)) == 0, "shifter width must be power of 2");
  int stages = 0;
  while ((1u << stages) < width) ++stages;
  GPUSTL_ASSERT(static_cast<std::size_t>(stages) <= amount.size(),
                "shift amount bus too narrow");

  const NetId zero = ConstBit(nl, false);
  const NetId fill_base = dir == ShiftDir::kRight && arithmetic
                              ? a.back()  // sign fill
                              : zero;
  Bus cur = a;
  for (int s = 0; s < stages; ++s) {
    const std::size_t step = 1ull << s;
    Bus shifted(width);
    for (std::size_t i = 0; i < width; ++i) {
      if (dir == ShiftDir::kLeft) {
        shifted[i] = i >= step ? cur[i - step] : zero;
      } else {
        shifted[i] = i + step < width ? cur[i + step] : fill_base;
      }
    }
    cur = MuxBus(nl, amount[static_cast<std::size_t>(s)], cur, shifted);
  }
  return cur;
}

Bus Multiplier(Netlist& nl, const Bus& a, const Bus& b) {
  const std::size_t wa = a.size();
  const std::size_t wb = b.size();
  const std::size_t wout = wa + wb;
  const NetId zero = ConstBit(nl, false);

  // Accumulate shifted partial products with ripple adders.
  Bus acc(wout, zero);
  for (std::size_t j = 0; j < wb; ++j) {
    Bus partial(wout, zero);
    for (std::size_t i = 0; i < wa; ++i) {
      partial[i + j] = nl.AddGate(CellType::kAnd2, {a[i], b[j]});
    }
    acc = Adder(nl, acc, partial, zero);
  }
  return acc;
}

Bus Slice(const Bus& a, int lo, int width) {
  GPUSTL_ASSERT(lo >= 0 && lo + width <= static_cast<int>(a.size()),
                "slice out of range");
  return Bus(a.begin() + lo, a.begin() + lo + width);
}

Bus ZeroExtend(Netlist& nl, const Bus& a, int width) {
  Bus out = a;
  if (static_cast<int>(out.size()) > width) {
    out.resize(static_cast<std::size_t>(width));
  }
  while (static_cast<int>(out.size()) < width) {
    out.push_back(ConstBit(nl, false));
  }
  return out;
}

}  // namespace gpustl::circuits
