#include "circuits/sp_core.h"

#include "circuits/blocks.h"
#include "common/bitops.h"
#include "common/error.h"
#include "isa/opcode.h"

namespace gpustl::circuits {

using isa::Opcode;
using netlist::CellType;
using netlist::Netlist;

namespace {
int Uop(Opcode op) { return static_cast<int>(op); }
}  // namespace

netlist::Netlist BuildSpCore() {
  Netlist nl("sp_core");
  const Bus uop = netlist::AddInputBus(nl, "uop", 6);
  const Bus cmp = netlist::AddInputBus(nl, "cmp", 3);
  const Bus a = netlist::AddInputBus(nl, "a", 32);
  const Bus b = netlist::AddInputBus(nl, "b", 32);
  const Bus c = netlist::AddInputBus(nl, "c", 32);

  const Bus uop_inv = NotBus(nl, uop);
  auto is_uop = [&](Opcode op) {
    Bus literals;
    literals.reserve(6);
    const int k = Uop(op);
    for (int bit = 0; bit < 6; ++bit) {
      literals.push_back((k >> bit) & 1 ? uop[static_cast<std::size_t>(bit)]
                                        : uop_inv[static_cast<std::size_t>(bit)]);
    }
    return ReduceAnd(nl, literals);
  };

  const netlist::NetId zero = ConstBit(nl, false);

  // --- shared datapath blocks ---
  const Bus add_ab = Adder(nl, a, b, zero);
  const Bus sub_ab = Subtractor(nl, a, b);
  const Bus mul =
      Multiplier(nl, Slice(a, 0, 16), Slice(b, 0, 16));  // 32-bit product
  const Bus mad = Adder(nl, mul, c, zero);
  const netlist::NetId lt_s = LessSigned(nl, a, b);
  const netlist::NetId eq = EqualsBus(nl, a, b);
  const Bus min_ab = MuxBus(nl, lt_s, b, a);  // lt ? a : b
  const Bus max_ab = MuxBus(nl, lt_s, a, b);  // lt ? b : a
  const Bus neg_a = Negate(nl, a);
  const Bus abs_a = MuxBus(nl, a.back(), a, neg_a);  // sign ? -a : a
  const Bus and_ab = AndBus(nl, a, b);
  const Bus or_ab = OrBus(nl, a, b);
  const Bus xor_ab = XorBus(nl, a, b);
  const Bus not_a = NotBus(nl, a);
  const Bus shamt = Slice(b, 0, 5);
  const Bus shl = BarrelShifter(nl, a, shamt, ShiftDir::kLeft, false);
  const Bus shr = BarrelShifter(nl, a, shamt, ShiftDir::kRight, false);
  const Bus sar = BarrelShifter(nl, a, shamt, ShiftDir::kRight, true);
  // SEL: (a & c) | (b & ~c)
  const Bus sel_ab = OrBus(nl, AndBus(nl, a, c), AndBus(nl, b, NotBus(nl, c)));

  // --- result selection ---
  struct Source {
    netlist::NetId enable;
    const Bus* bus;
  };
  const netlist::NetId en_add = nl.AddGate(
      CellType::kOr2, {is_uop(Opcode::IADD), is_uop(Opcode::IADD32I)});
  const netlist::NetId en_movb = nl.AddGate(
      CellType::kOr2, {is_uop(Opcode::MOV32I), is_uop(Opcode::S2R)});
  const std::vector<Source> sources = {
      {en_add, &add_ab},
      {is_uop(Opcode::ISUB), &sub_ab},
      {is_uop(Opcode::IMUL), &mul},
      {is_uop(Opcode::IMAD), &mad},
      {is_uop(Opcode::IMIN), &min_ab},
      {is_uop(Opcode::IMAX), &max_ab},
      {is_uop(Opcode::IABS), &abs_a},
      {is_uop(Opcode::INEG), &neg_a},
      {is_uop(Opcode::AND), &and_ab},
      {is_uop(Opcode::OR), &or_ab},
      {is_uop(Opcode::XOR), &xor_ab},
      {is_uop(Opcode::NOT), &not_a},
      {is_uop(Opcode::SHL), &shl},
      {is_uop(Opcode::SHR), &shr},
      {is_uop(Opcode::SAR), &sar},
      {is_uop(Opcode::SEL), &sel_ab},
      {is_uop(Opcode::MOV), &a},
      {en_movb, &b},
  };

  for (int bit = 0; bit < 32; ++bit) {
    Bus terms;
    terms.reserve(sources.size());
    for (const Source& s : sources) {
      terms.push_back(nl.AddGate(
          CellType::kAnd2, {s.enable, (*s.bus)[static_cast<std::size_t>(bit)]}));
    }
    nl.MarkOutput(ReduceOr(nl, std::move(terms)),
                  "r[" + std::to_string(bit) + "]");
  }

  // --- predicate outcome (ISETP) ---
  const Bus cmp_inv = NotBus(nl, cmp);
  auto is_cmp = [&](isa::CmpOp op) {
    Bus literals;
    const int k = static_cast<int>(op);
    for (int bit = 0; bit < 3; ++bit) {
      literals.push_back((k >> bit) & 1 ? cmp[static_cast<std::size_t>(bit)]
                                        : cmp_inv[static_cast<std::size_t>(bit)]);
    }
    return ReduceAnd(nl, literals);
  };
  const netlist::NetId le = nl.AddGate(CellType::kOr2, {lt_s, eq});
  const netlist::NetId gt = nl.AddGate(CellType::kInv, {le});
  const netlist::NetId ge = nl.AddGate(CellType::kInv, {lt_s});
  const netlist::NetId ne = nl.AddGate(CellType::kInv, {eq});
  Bus pred_terms = {
      nl.AddGate(CellType::kAnd2, {is_cmp(isa::CmpOp::kLT), lt_s}),
      nl.AddGate(CellType::kAnd2, {is_cmp(isa::CmpOp::kLE), le}),
      nl.AddGate(CellType::kAnd2, {is_cmp(isa::CmpOp::kGT), gt}),
      nl.AddGate(CellType::kAnd2, {is_cmp(isa::CmpOp::kGE), ge}),
      nl.AddGate(CellType::kAnd2, {is_cmp(isa::CmpOp::kEQ), eq}),
      nl.AddGate(CellType::kAnd2, {is_cmp(isa::CmpOp::kNE), ne}),
  };
  const netlist::NetId cond = ReduceOr(nl, std::move(pred_terms));
  nl.MarkOutput(nl.AddGate(CellType::kAnd2, {is_uop(Opcode::ISETP), cond}),
                "pred");

  GPUSTL_ASSERT(static_cast<int>(nl.num_inputs()) == kSpNumInputs,
                "SP input arity drifted");
  GPUSTL_ASSERT(static_cast<int>(nl.num_outputs()) == kSpNumOutputs,
                "SP output arity drifted");
  nl.Freeze();
  return nl;
}

void EncodeSpPattern(int uop, int cmp, std::uint32_t a, std::uint32_t b,
                     std::uint32_t c, std::uint64_t* words) {
  words[0] = 0;
  words[1] = 0;
  auto put = [&](int lo, int width, std::uint64_t value) {
    for (int i = 0; i < width; ++i) {
      const int bit = lo + i;
      if ((value >> i) & 1) words[bit / 64] |= 1ull << (bit % 64);
    }
  };
  put(0, 6, static_cast<std::uint64_t>(uop));
  put(6, 3, static_cast<std::uint64_t>(cmp));
  put(9, 32, a);
  put(41, 32, b);
  put(73, 32, c);
}

}  // namespace gpustl::circuits
