// Gate-level SP core integer/logic datapath.
//
// One Streaming Processor lane as a combinational datapath between the
// operand-read and write-back pipeline registers. Inputs are the micro-op
// selector (the opcode value, 6 bits), the comparison selector (3 bits) and
// the three 32-bit operands already resolved by the operand-collect stage
// (immediates and special registers arrive through operand B). Outputs are
// the 32-bit result and the predicate outcome.
//
// Input order:  uop[0..5], cmp[0..2], A[0..31], B[0..31], C[0..31]   (105)
// Output order: R[0..31], pred                                       (33)
//
// SpIntOp() in reference.h is the bit-exact software model.
#pragma once

#include "netlist/netlist.h"

namespace gpustl::circuits {

inline constexpr int kSpNumInputs = 6 + 3 + 32 * 3;
inline constexpr int kSpNumOutputs = 33;

/// Builds and freezes the SP datapath netlist.
netlist::Netlist BuildSpCore();

/// Packs an SP input pattern (uop, cmp, a, b, c) into `words[0..2]`
/// following the input order above. `words` must hold >= 2 entries
/// ((105+63)/64 = 2).
void EncodeSpPattern(int uop, int cmp, std::uint32_t a, std::uint32_t b,
                     std::uint32_t c, std::uint64_t* words);

}  // namespace gpustl::circuits
