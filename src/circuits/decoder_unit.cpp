#include "circuits/decoder_unit.h"

#include "circuits/blocks.h"
#include "common/error.h"
#include "isa/opcode.h"

namespace gpustl::circuits {

using isa::ExecUnit;
using isa::Format;
using isa::GetOpcodeInfo;
using isa::kNumOpcodes;
using isa::Opcode;
using isa::OpcodeInfo;
using netlist::CellType;
using netlist::Netlist;

netlist::Netlist BuildDecoderUnit() {
  Netlist nl("decoder_unit");
  const Bus word = netlist::AddInputBus(nl, "iw", 64);

  const Bus op_field = Slice(word, 0, 8);
  const Bus op_inv = NotBus(nl, op_field);

  // Per-opcode enable: equality comparator against each opcode value,
  // sharing the inverted literals.
  std::vector<netlist::NetId> is_op(static_cast<std::size_t>(kNumOpcodes));
  for (int k = 0; k < kNumOpcodes; ++k) {
    Bus literals;
    literals.reserve(8);
    for (int b = 0; b < 8; ++b) {
      literals.push_back((k >> b) & 1 ? op_field[static_cast<std::size_t>(b)]
                                      : op_inv[static_cast<std::size_t>(b)]);
    }
    is_op[static_cast<std::size_t>(k)] = ReduceAnd(nl, literals);
  }

  auto or_of_ops = [&](auto&& predicate) {
    Bus terms;
    for (int k = 0; k < kNumOpcodes; ++k) {
      if (predicate(GetOpcodeInfo(static_cast<Opcode>(k)))) {
        terms.push_back(is_op[static_cast<std::size_t>(k)]);
      }
    }
    if (terms.empty()) return ConstBit(nl, false);
    return ReduceOr(nl, std::move(terms));
  };

  const netlist::NetId valid = or_of_ops([](const OpcodeInfo&) { return true; });

  // Output assembly in DuOutputIndex order.
  nl.MarkOutput(valid, "valid");
  for (int u = 0; u < 5; ++u) {
    const auto unit = static_cast<ExecUnit>(u);
    nl.MarkOutput(
        or_of_ops([&](const OpcodeInfo& info) { return info.unit == unit; }),
        "unit[" + std::to_string(u) + "]");
  }
  nl.MarkOutput(or_of_ops([](const OpcodeInfo& i) { return i.writes_reg; }),
                "writes_reg");
  nl.MarkOutput(or_of_ops([](const OpcodeInfo& i) { return i.writes_pred; }),
                "writes_pred");
  nl.MarkOutput(or_of_ops([](const OpcodeInfo& i) { return i.reads_memory; }),
                "reads_mem");
  nl.MarkOutput(or_of_ops([](const OpcodeInfo& i) { return i.writes_memory; }),
                "writes_mem");
  nl.MarkOutput(or_of_ops([](const OpcodeInfo& i) { return i.is_branch; }),
                "is_branch");

  auto buffer = [&](netlist::NetId n) {
    return nl.AddGate(CellType::kBuf, {n});
  };
  nl.MarkOutput(buffer(word[30]), "has_imm");
  nl.MarkOutput(buffer(word[10]), "predicated");
  nl.MarkOutput(buffer(word[11]), "pred_neg");
  for (int i = 0; i < 2; ++i) {
    nl.MarkOutput(buffer(word[8 + static_cast<std::size_t>(i)]),
                  "pred_reg[" + std::to_string(i) + "]");
  }
  auto mark_field = [&](const char* name, int lo, int width) {
    for (int i = 0; i < width; ++i) {
      nl.MarkOutput(buffer(word[static_cast<std::size_t>(lo + i)]),
                    std::string(name) + "[" + std::to_string(i) + "]");
    }
  };
  mark_field("dst", 12, 6);
  mark_field("src_a", 18, 6);
  mark_field("src_b", 24, 6);
  mark_field("src_c", 32, 6);

  // Comparison one-hot from bits [38,41).
  const Bus cmp_field = Slice(word, 38, 3);
  const Bus cmp_inv = NotBus(nl, cmp_field);
  for (int k = 0; k < 6; ++k) {
    Bus literals;
    for (int b = 0; b < 3; ++b) {
      literals.push_back((k >> b) & 1 ? cmp_field[static_cast<std::size_t>(b)]
                                      : cmp_inv[static_cast<std::size_t>(b)]);
    }
    nl.MarkOutput(ReduceAnd(nl, literals), "cmp[" + std::to_string(k) + "]");
  }

  // Format one-hot (8 formats).
  for (int fmt = 0; fmt < 8; ++fmt) {
    const auto format = static_cast<Format>(fmt);
    nl.MarkOutput(
        or_of_ops([&](const OpcodeInfo& i) { return i.format == format; }),
        "format[" + std::to_string(fmt) + "]");
  }

  // Per-op micro-enable bus.
  for (int k = 0; k < kNumOpcodes; ++k) {
    nl.MarkOutput(buffer(is_op[static_cast<std::size_t>(k)]),
                  "op_en[" + std::to_string(k) + "]");
  }

  // GPRF write-address decoder: one enable line per destination register,
  // the downstream interface of the decode stage to the register file.
  const Bus dst_field = Slice(word, 12, 6);
  const Bus dst_inv = NotBus(nl, dst_field);
  for (int r = 0; r < 64; ++r) {
    Bus literals;
    literals.reserve(6);
    for (int b = 0; b < 6; ++b) {
      literals.push_back((r >> b) & 1 ? dst_field[static_cast<std::size_t>(b)]
                                      : dst_inv[static_cast<std::size_t>(b)]);
    }
    nl.MarkOutput(ReduceAnd(nl, literals), "dst_en[" + std::to_string(r) + "]");
  }

  // Operand-hazard comparators (dst vs source fields) and immediate-field
  // quick looks used by the operand-collect stage.
  nl.MarkOutput(EqualsBus(nl, dst_field, Slice(word, 18, 6)), "hazard_a");
  nl.MarkOutput(EqualsBus(nl, dst_field, Slice(word, 24, 6)), "hazard_b");
  {
    Bus imm_bits = Slice(word, 32, 32);
    const netlist::NetId any = ReduceOr(nl, imm_bits);
    nl.MarkOutput(nl.AddGate(CellType::kInv, {any}), "imm_zero");
  }
  nl.MarkOutput(buffer(word[63]), "imm_sign");

  GPUSTL_ASSERT(nl.num_outputs() == DuOutputIndex::kCount,
                "DU output arity drifted from DuOutputIndex");
  nl.Freeze();
  return nl;
}

}  // namespace gpustl::circuits
