// Word-level combinational building blocks used to construct the gate-level
// GPU modules (Decoder Unit, SP core datapath, SFU datapath).
//
// All helpers append gates to the target netlist and return the output bus.
// Word buses are little-endian (bus[0] = LSB). These blocks are the
// "synthesis" stand-in for the paper's Nangate 15 nm flow: the modules are
// constructed directly as structural netlists.
#pragma once

#include <cstdint>

#include "netlist/netlist.h"

namespace gpustl::circuits {

using netlist::Bus;
using netlist::NetId;
using netlist::Netlist;

/// Constant driver net for a single bit.
NetId ConstBit(Netlist& nl, bool value);

/// Constant word of `width` bits.
Bus ConstWord(Netlist& nl, std::uint64_t value, int width);

/// Elementwise NOT / AND / OR / XOR over equal-width buses.
Bus NotBus(Netlist& nl, const Bus& a);
Bus AndBus(Netlist& nl, const Bus& a, const Bus& b);
Bus OrBus(Netlist& nl, const Bus& a, const Bus& b);
Bus XorBus(Netlist& nl, const Bus& a, const Bus& b);

/// 2:1 word mux: sel ? b : a.
Bus MuxBus(Netlist& nl, NetId sel, const Bus& a, const Bus& b);

/// Balanced AND / OR reduction of arbitrarily many bits.
NetId ReduceAnd(Netlist& nl, Bus bits);
NetId ReduceOr(Netlist& nl, Bus bits);

/// 1 iff bus value == the constant `value` (equality comparator).
NetId EqualsConst(Netlist& nl, const Bus& a, std::uint64_t value);

/// 1 iff a == b.
NetId EqualsBus(Netlist& nl, const Bus& a, const Bus& b);

/// Ripple-carry adder; returns sum (same width) and writes carry-out to
/// *carry_out if non-null. carry_in may be ConstBit(.., false).
Bus Adder(Netlist& nl, const Bus& a, const Bus& b, NetId carry_in,
          NetId* carry_out = nullptr);

/// a - b (two's complement); *borrow_free is 1 when a >= b (unsigned).
Bus Subtractor(Netlist& nl, const Bus& a, const Bus& b,
               NetId* no_borrow = nullptr);

/// Two's-complement negation.
Bus Negate(Netlist& nl, const Bus& a);

/// Unsigned comparison: 1 iff a < b.
NetId LessUnsigned(Netlist& nl, const Bus& a, const Bus& b);

/// Signed comparison: 1 iff a < b (two's complement).
NetId LessSigned(Netlist& nl, const Bus& a, const Bus& b);

/// Logarithmic barrel shifter. `amount` is read modulo bus width (which
/// must be a power of two). arith only applies to right shifts.
enum class ShiftDir { kLeft, kRight };
Bus BarrelShifter(Netlist& nl, const Bus& a, const Bus& amount, ShiftDir dir,
                  bool arithmetic);

/// Unsigned array multiplier: returns the low `a.size()+b.size()` bits of
/// a*b (callers slice what they need).
Bus Multiplier(Netlist& nl, const Bus& a, const Bus& b);

/// Slices bits [lo, lo+width) of a bus (pure wiring).
Bus Slice(const Bus& a, int lo, int width);

/// Zero-extends / truncates a bus to `width` bits.
Bus ZeroExtend(Netlist& nl, const Bus& a, int width);

}  // namespace gpustl::circuits
