#include "circuits/fp32.h"

#include "circuits/blocks.h"
#include "common/error.h"

namespace gpustl::circuits {

using netlist::CellType;
using netlist::Netlist;

// ---------------------------------------------------------------------------
// Software reference. Every step mirrors the netlist structure 1:1 so the
// two stay bit-exact: 12-bit mantissas (hidden bit + 11 fraction bits),
// 10-bit wrap-around exponent arithmetic with the sign in bit 9, truncation
// everywhere, subnormals flushed to zero, overflow saturating to the
// infinity encoding. exp==255 inputs are treated as ordinary large
// exponents (no NaN logic), as in area-reduced embedded FP datapaths.
// ---------------------------------------------------------------------------
namespace {

struct Unpacked {
  std::uint32_t sign;   // 1 bit
  std::uint32_t exp;    // 8 bits
  std::uint32_t mant;   // 12 bits; 0 when exp == 0 (flush to zero)
};

Unpacked Unpack(std::uint32_t x) {
  Unpacked u;
  u.sign = x >> 31;
  u.exp = (x >> 23) & 0xFF;
  const std::uint32_t frac11 = (x >> 12) & 0x7FF;
  u.mant = u.exp != 0 ? (0x800 | frac11) : 0;
  return u;
}

std::uint32_t Pack(std::uint32_t sign, std::uint32_t e10, std::uint32_t mant) {
  if (mant == 0) return sign << 31;
  const bool neg = (e10 >> 9) & 1;
  if (neg || (e10 & 0x3FF) == 0) return sign << 31;  // underflow: zero
  const std::uint32_t low9 = e10 & 0x1FF;
  if (low9 >= 255) return (sign << 31) | 0x7F800000u;  // overflow: infinity
  return (sign << 31) | (low9 << 23) | ((mant & 0x7FF) << 12);
}

std::uint32_t MulLite(std::uint32_t a, std::uint32_t b) {
  const Unpacked ua = Unpack(a), ub = Unpack(b);
  const std::uint32_t sign = ua.sign ^ ub.sign;
  if (ua.mant == 0 || ub.mant == 0) return sign << 31;
  const std::uint32_t p = ua.mant * ub.mant;  // 24 bits
  const std::uint32_t hi = (p >> 23) & 1;
  const std::uint32_t mant = hi ? (p >> 12) & 0xFFF : (p >> 11) & 0xFFF;
  const std::uint32_t e10 = (ua.exp + ub.exp + 897 + hi) & 0x3FF;  // -127
  return Pack(sign, e10, mant);
}

std::uint32_t AddLite(std::uint32_t a, std::uint32_t b) {
  Unpacked ua = Unpack(a), ub = Unpack(b);
  // Swap so |a| >= |b| (lexicographic on exp:mant).
  const std::uint32_t ka = (ua.exp << 12) | ua.mant;
  const std::uint32_t kb = (ub.exp << 12) | ub.mant;
  if (kb > ka) std::swap(ua, ub);

  const std::uint32_t d = (ua.exp - ub.exp) & 0xFF;
  const std::uint32_t sh = d > 15 ? 15 : d;
  const std::uint32_t mb_aligned = ub.mant >> sh;

  if (ua.sign == ub.sign) {
    const std::uint32_t s13 = ua.mant + mb_aligned;
    const std::uint32_t carry = (s13 >> 12) & 1;
    const std::uint32_t mant = carry ? (s13 >> 1) & 0xFFF : s13 & 0xFFF;
    const std::uint32_t e10 = (ua.exp + carry) & 0x3FF;
    return Pack(ua.sign, e10, mant);
  }

  std::uint32_t v = (ua.mant - mb_aligned) & 0xFFF;  // >= 0 by the swap
  if (v == 0) return 0;  // exact cancellation: +0
  std::uint32_t e10 = ua.exp & 0x3FF;
  for (const std::uint32_t k : {8u, 4u, 2u, 1u}) {
    if ((v >> (12 - k)) == 0) {
      v = (v << k) & 0xFFF;
      e10 = (e10 - k) & 0x3FF;
    }
  }
  return Pack(ua.sign, e10, v);
}

}  // namespace

std::uint32_t Fp32LiteOp(Fp32Uop uop, std::uint32_t a, std::uint32_t b) {
  switch (uop) {
    case Fp32Uop::kAdd: return AddLite(a, b);
    case Fp32Uop::kMul: return MulLite(a, b);
    case Fp32Uop::kAbs: return a & 0x7FFFFFFFu;
    case Fp32Uop::kNeg: return a ^ 0x80000000u;
  }
  throw Error("Fp32LiteOp: bad uop");
}

void EncodeFp32Pattern(Fp32Uop uop, std::uint32_t a, std::uint32_t b,
                       std::uint64_t* words) {
  words[0] = 0;
  words[1] = 0;
  words[0] |= static_cast<std::uint64_t>(static_cast<int>(uop) & 0x3);
  words[0] |= static_cast<std::uint64_t>(a) << 2;
  // A occupies bits [2,34); B occupies [34,66).
  words[0] |= static_cast<std::uint64_t>(b) << 34;
  words[1] |= static_cast<std::uint64_t>(b) >> 30;
}

// ---------------------------------------------------------------------------
// Netlist. The same steps, in gates.
// ---------------------------------------------------------------------------
namespace {

struct UnpackedBus {
  netlist::NetId sign;
  Bus exp;   // 8
  Bus mant;  // 12 (hidden bit = exp != 0)
};

UnpackedBus UnpackBus(Netlist& nl, const Bus& x) {
  UnpackedBus u;
  u.sign = x[31];
  u.exp = Slice(x, 23, 8);
  const netlist::NetId nz = ReduceOr(nl, u.exp);
  const Bus frac11 = Slice(x, 12, 11);
  u.mant = AndBus(nl, frac11, Bus(11, nz));
  u.mant.push_back(nz);  // hidden bit
  return u;
}

/// pack: the reference's Pack() in gates. e10 is a 10-bit bus.
Bus PackBus(Netlist& nl, netlist::NetId sign, const Bus& e10,
            const Bus& mant12) {
  const netlist::NetId zero = ConstBit(nl, false);
  const netlist::NetId mant_zero =
      nl.AddGate(CellType::kInv, {ReduceOr(nl, mant12)});
  const netlist::NetId neg = e10[9];
  const netlist::NetId e_all_zero =
      nl.AddGate(CellType::kInv, {ReduceOr(nl, e10)});
  const netlist::NetId flush =
      nl.AddGate(CellType::kOr3, {mant_zero, neg, e_all_zero});

  // low9 >= 255  <=>  low9 in [255, 511]: bit8 set, or bits[0..8) all ones.
  const Bus low9 = Slice(e10, 0, 9);
  const netlist::NetId low8_ones = ReduceAnd(nl, Slice(e10, 0, 8));
  const netlist::NetId ovf_raw =
      nl.AddGate(CellType::kOr2, {e10[8], low8_ones});
  const netlist::NetId nflush = nl.AddGate(CellType::kInv, {flush});
  const netlist::NetId ovf = nl.AddGate(CellType::kAnd2, {ovf_raw, nflush});

  // Normal result bits.
  Bus out(32, zero);
  for (int i = 0; i < 11; ++i) out[static_cast<std::size_t>(12 + i)] = mant12[static_cast<std::size_t>(i)];
  for (int i = 0; i < 8; ++i) out[static_cast<std::size_t>(23 + i)] = low9[static_cast<std::size_t>(i)];

  // Apply flush (everything but sign to 0) then overflow (exp=255, frac=0).
  const netlist::NetId keep = nl.AddGate(
      CellType::kAnd2, {nflush, nl.AddGate(CellType::kInv, {ovf})});
  Bus result(32, zero);
  for (int i = 0; i < 31; ++i) {
    const netlist::NetId normal =
        nl.AddGate(CellType::kAnd2, {out[static_cast<std::size_t>(i)], keep});
    if (i >= 23) {
      // Exponent bits are 1 under overflow.
      result[static_cast<std::size_t>(i)] =
          nl.AddGate(CellType::kOr2, {normal, ovf});
    } else {
      result[static_cast<std::size_t>(i)] = normal;
    }
  }
  result[31] = nl.AddGate(CellType::kBuf, {sign});
  return result;
}

}  // namespace

netlist::Netlist BuildFp32() {
  Netlist nl("fp32");
  const Bus uop = netlist::AddInputBus(nl, "uop", 2);
  const Bus a = netlist::AddInputBus(nl, "a", 32);
  const Bus b = netlist::AddInputBus(nl, "b", 32);

  const netlist::NetId zero = ConstBit(nl, false);

  const UnpackedBus ua = UnpackBus(nl, a);
  const UnpackedBus ub = UnpackBus(nl, b);

  // ---- FMUL path ----
  Bus mul_result;
  {
    const netlist::NetId sign = nl.AddGate(CellType::kXor2, {ua.sign, ub.sign});
    const Bus p = Multiplier(nl, ua.mant, ub.mant);  // 24 bits
    const netlist::NetId hi = p[23];
    const Bus mant = MuxBus(nl, hi, Slice(p, 11, 12), Slice(p, 12, 12));
    // e10 = ea + eb + 897 + hi (10-bit wrap).
    const Bus ea10 = ZeroExtend(nl, ua.exp, 10);
    const Bus eb10 = ZeroExtend(nl, ub.exp, 10);
    const Bus esum = Adder(nl, ea10, eb10, zero);
    const Bus ebiased = Adder(nl, esum, ConstWord(nl, 897, 10), hi);
    // Zero operands force a zero mantissa into Pack.
    const netlist::NetId nz =
        nl.AddGate(CellType::kAnd2, {ua.mant[11], ub.mant[11]});
    const Bus gated = AndBus(nl, mant, Bus(12, nz));
    mul_result = PackBus(nl, sign, ebiased, gated);
  }

  // ---- FADD path ----
  Bus add_result;
  {
    // Magnitude keys (20 bits) and the swap.
    Bus ka = ua.mant;
    ka.insert(ka.end(), ua.exp.begin(), ua.exp.end());
    Bus kb = ub.mant;
    kb.insert(kb.end(), ub.exp.begin(), ub.exp.end());
    const netlist::NetId swap = LessUnsigned(nl, ka, kb);  // |a| < |b|

    const netlist::NetId s_big = nl.AddGate(CellType::kMux2, {ua.sign, ub.sign, swap});
    const netlist::NetId s_small = nl.AddGate(CellType::kMux2, {ub.sign, ua.sign, swap});
    const Bus e_big = MuxBus(nl, swap, ua.exp, ub.exp);
    const Bus e_small = MuxBus(nl, swap, ub.exp, ua.exp);
    const Bus m_big = MuxBus(nl, swap, ua.mant, ub.mant);
    const Bus m_small = MuxBus(nl, swap, ub.mant, ua.mant);

    // Alignment shift: sh = min(e_big - e_small, 15).
    const Bus d = Subtractor(nl, e_big, e_small);  // 8 bits, >= 0
    const netlist::NetId big_shift = ReduceOr(nl, Slice(d, 4, 4));
    const Bus sh = MuxBus(nl, big_shift, Slice(d, 0, 4), ConstWord(nl, 15, 4));
    const Bus m_small16 = ZeroExtend(nl, m_small, 16);
    const Bus aligned16 =
        BarrelShifter(nl, m_small16, sh, ShiftDir::kRight, false);
    const Bus m_aligned = Slice(aligned16, 0, 12);

    const netlist::NetId same_sign =
        nl.AddGate(CellType::kXnor2, {s_big, s_small});

    // Same-sign: 13-bit sum with 1-bit normalize.
    const Bus sum13 = [&] {
      Bus s = Adder(nl, ZeroExtend(nl, m_big, 13), ZeroExtend(nl, m_aligned, 13), zero);
      return s;
    }();
    const netlist::NetId carry = sum13[12];
    const Bus mant_same = MuxBus(nl, carry, Slice(sum13, 0, 12), Slice(sum13, 1, 12));
    const Bus e_same = Adder(nl, ZeroExtend(nl, e_big, 10),
                             ConstWord(nl, 0, 10), carry);

    // Opposite-sign: subtract and renormalize (shift-by-{8,4,2,1}).
    Bus v = Subtractor(nl, m_big, m_aligned);  // 12 bits, >= 0
    Bus e_diff = ZeroExtend(nl, e_big, 10);
    for (const int k : {8, 4, 2, 1}) {
      const netlist::NetId top_zero = nl.AddGate(
          CellType::kInv, {ReduceOr(nl, Slice(v, 12 - k, k))});
      // v <<= k when the top k bits are all zero.
      Bus shifted(12, zero);
      for (int i = 11; i >= k; --i) {
        shifted[static_cast<std::size_t>(i)] = v[static_cast<std::size_t>(i - k)];
      }
      v = MuxBus(nl, top_zero, v, shifted);
      const Bus e_adj =
          Subtractor(nl, e_diff, ConstWord(nl, static_cast<std::uint64_t>(k), 10));
      e_diff = MuxBus(nl, top_zero, e_diff, e_adj);
    }

    const Bus mant_sel = MuxBus(nl, same_sign, v, mant_same);
    const Bus e_sel = MuxBus(nl, same_sign, e_diff, e_same);

    // Exact cancellation gives +0: zero mantissa already flushes in Pack,
    // but the sign must also drop to +.
    const netlist::NetId v_zero = nl.AddGate(CellType::kInv, {ReduceOr(nl, v)});
    const netlist::NetId cancel = nl.AddGate(
        CellType::kAnd2, {nl.AddGate(CellType::kInv, {same_sign}), v_zero});
    const netlist::NetId sign_out = nl.AddGate(
        CellType::kAnd2, {s_big, nl.AddGate(CellType::kInv, {cancel})});

    add_result = PackBus(nl, sign_out, e_sel, mant_sel);
  }

  // ---- FABS / FNEG paths ----
  Bus abs_result = a;
  abs_result[31] = zero;
  Bus neg_result = a;
  neg_result[31] = nl.AddGate(CellType::kInv, {a[31]});

  // ---- uop select: 0=add, 1=mul, 2=abs, 3=neg ----
  const Bus lo = MuxBus(nl, uop[0], add_result, mul_result);
  const Bus hi = MuxBus(nl, uop[0], abs_result, neg_result);
  const Bus y = MuxBus(nl, uop[1], lo, hi);
  netlist::MarkOutputBus(nl, y, "y");

  GPUSTL_ASSERT(static_cast<int>(nl.num_inputs()) == kFp32NumInputs,
                "FP32 input arity drifted");
  GPUSTL_ASSERT(static_cast<int>(nl.num_outputs()) == kFp32NumOutputs,
                "FP32 output arity drifted");
  nl.Freeze();
  return nl;
}

}  // namespace gpustl::circuits
