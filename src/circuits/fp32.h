// Gate-level FP32 lane datapath ("FP-lite").
//
// The SM contains 8 FP32 units next to the SP cores (paper §II.B). This
// module models one lane as a combinational datapath for FADD / FMUL /
// FABS / FNEG with a REDUCED-PRECISION mantissa (hidden bit + 11 fraction
// bits, truncating, subnormals flushed to zero, overflow saturating to
// infinity encoding, no NaN handling) — the usual area-reduced embedded FP
// datapath. The GPU's architectural FP results remain full IEEE (computed
// in software); like the SP and SFU modules, this netlist only defines the
// fault-simulation behavior for the patterns the FP instructions apply.
//
// Input order:  uop[0..1], A[0..31], B[0..31]   (66)
//   uop: 0 = FADD, 1 = FMUL, 2 = FABS, 3 = FNEG
// Output order: Y[0..31]                        (32)
//
// Fp32LiteOp() in this header is the bit-exact software model.
#pragma once

#include <cstdint>

#include "netlist/netlist.h"

namespace gpustl::circuits {

inline constexpr int kFp32NumInputs = 2 + 32 + 32;
inline constexpr int kFp32NumOutputs = 32;

/// Micro-op selectors of the FP32 module.
enum class Fp32Uop : int { kAdd = 0, kMul = 1, kAbs = 2, kNeg = 3 };

/// Builds and freezes the FP32 datapath netlist.
netlist::Netlist BuildFp32();

/// Bit-exact software model of the datapath.
std::uint32_t Fp32LiteOp(Fp32Uop uop, std::uint32_t a, std::uint32_t b);

/// Packs an FP32 input pattern into `words[0..1]` ((66+63)/64 = 2 words).
void EncodeFp32Pattern(Fp32Uop uop, std::uint32_t a, std::uint32_t b,
                       std::uint64_t* words);

}  // namespace gpustl::circuits
