#include "circuits/reference.h"

#include "circuits/decoder_unit.h"
#include "common/bitops.h"
#include "isa/instruction.h"

namespace gpustl::circuits {

using isa::CmpOp;
using isa::Opcode;

SpResult SpIntOp(Opcode op, CmpOp cmp, std::uint32_t a, std::uint32_t b,
                 std::uint32_t c) {
  const auto sa = static_cast<std::int32_t>(a);
  const auto sb = static_cast<std::int32_t>(b);
  const std::uint32_t mul16 = (a & 0xFFFFu) * (b & 0xFFFFu);

  SpResult r;
  switch (op) {
    case Opcode::IADD:
    case Opcode::IADD32I:
      r.value = a + b;
      break;
    case Opcode::ISUB:
      r.value = a - b;
      break;
    case Opcode::IMUL:
      r.value = mul16;
      break;
    case Opcode::IMAD:
      r.value = mul16 + c;
      break;
    case Opcode::IMIN:
      r.value = sa < sb ? a : b;
      break;
    case Opcode::IMAX:
      r.value = sa < sb ? b : a;
      break;
    case Opcode::IABS:
      r.value = sa < 0 ? 0u - a : a;
      break;
    case Opcode::INEG:
      r.value = 0u - a;
      break;
    case Opcode::AND:
      r.value = a & b;
      break;
    case Opcode::OR:
      r.value = a | b;
      break;
    case Opcode::XOR:
      r.value = a ^ b;
      break;
    case Opcode::NOT:
      r.value = ~a;
      break;
    case Opcode::SHL:
      r.value = a << (b & 31u);
      break;
    case Opcode::SHR:
      r.value = a >> (b & 31u);
      break;
    case Opcode::SAR:
      r.value = static_cast<std::uint32_t>(sa >> (b & 31u));
      break;
    case Opcode::SEL:
      r.value = (a & c) | (b & ~c);
      break;
    case Opcode::MOV:
      r.value = a;
      break;
    case Opcode::MOV32I:
    case Opcode::S2R:
      r.value = b;
      break;
    case Opcode::ISETP: {
      r.value = 0;
      switch (cmp) {
        case CmpOp::kLT: r.pred = sa < sb; break;
        case CmpOp::kLE: r.pred = sa <= sb; break;
        case CmpOp::kGT: r.pred = sa > sb; break;
        case CmpOp::kGE: r.pred = sa >= sb; break;
        case CmpOp::kEQ: r.pred = a == b; break;
        case CmpOp::kNE: r.pred = a != b; break;
      }
      break;
    }
    default:
      // Non-integer opcodes never reach the SP integer datapath.
      r.value = 0;
      break;
  }
  return r;
}

namespace {
std::uint16_t RotL16(std::uint16_t v, int k) {
  return static_cast<std::uint16_t>((v << k) | (v >> (16 - k)));
}
}  // namespace

std::uint32_t SfuOp(int fsel, std::uint32_t x) {
  const auto xl = static_cast<std::uint16_t>(x & 0xFFFFu);
  const auto xh = static_cast<std::uint16_t>(x >> 16);
  std::uint16_t k = 0;
  for (int i = 0; i < 16; ++i) {
    if ((fsel >> (i % 3)) & 1) k = static_cast<std::uint16_t>(k | (1u << i));
  }
  const std::uint16_t c0 = static_cast<std::uint16_t>(xh ^ RotL16(xh, 3) ^ k);
  const std::uint16_t c1 =
      static_cast<std::uint16_t>((xh & RotL16(xh, 5)) ^ static_cast<std::uint16_t>(~k));
  const std::uint16_t c2 =
      static_cast<std::uint16_t>((xh | RotL16(xh, 7)) ^ RotL16(k, 1));
  const std::uint32_t sq = static_cast<std::uint32_t>(xl) * xl;
  const std::uint16_t sqh = static_cast<std::uint16_t>(sq >> 16);
  return (static_cast<std::uint32_t>(c0) << 16) +
         static_cast<std::uint32_t>(c1) * xl +
         static_cast<std::uint32_t>(c2) * sqh;
}

std::array<std::uint64_t, 3> DuReference(std::uint64_t instr_word) {
  std::array<std::uint64_t, 3> out{0, 0, 0};
  auto set = [&](int index, bool value) {
    if (value) out[static_cast<std::size_t>(index) / 64] |=
        1ull << (static_cast<std::size_t>(index) % 64);
  };
  auto set_field = [&](int index, std::uint64_t value, int width) {
    for (int i = 0; i < width; ++i) set(index + i, (value >> i) & 1);
  };

  const std::uint64_t op_field = BitField(instr_word, 0, 8);
  const bool valid = op_field < static_cast<std::uint64_t>(isa::kNumOpcodes);
  using I = DuOutputIndex;
  set(I::kValid, valid);
  if (valid) {
    const auto& info = isa::GetOpcodeInfo(static_cast<Opcode>(op_field));
    set(I::kUnitOneHot + static_cast<int>(info.unit), true);
    set(I::kWritesReg, info.writes_reg);
    set(I::kWritesPred, info.writes_pred);
    set(I::kReadsMem, info.reads_memory);
    set(I::kWritesMem, info.writes_memory);
    set(I::kIsBranch, info.is_branch);
    set(I::kFormatOneHot + static_cast<int>(info.format), true);
    set(I::kOpEnable + static_cast<int>(op_field), true);
  }
  set(I::kHasImm, BitField(instr_word, 30, 1) != 0);
  set(I::kPredicated, BitField(instr_word, 10, 1) != 0);
  set(I::kPredNeg, BitField(instr_word, 11, 1) != 0);
  set_field(I::kPredReg, BitField(instr_word, 8, 2), 2);
  set_field(I::kDst, BitField(instr_word, 12, 6), 6);
  set_field(I::kSrcA, BitField(instr_word, 18, 6), 6);
  set_field(I::kSrcB, BitField(instr_word, 24, 6), 6);
  set_field(I::kSrcC, BitField(instr_word, 32, 6), 6);
  const std::uint64_t cmp_field = BitField(instr_word, 38, 3);
  if (cmp_field < 6) set(I::kCmpOneHot + static_cast<int>(cmp_field), true);

  const std::uint64_t dst = BitField(instr_word, 12, 6);
  set(I::kDstOneHot + static_cast<int>(dst), true);
  set(I::kHazardA, dst == BitField(instr_word, 18, 6));
  set(I::kHazardB, dst == BitField(instr_word, 24, 6));
  set(I::kImmZero, BitField(instr_word, 32, 32) == 0);
  set(I::kImmSign, BitField(instr_word, 63, 1) != 0);
  return out;
}

}  // namespace gpustl::circuits
