// Gate-level Decoder Unit (DU) of the SM.
//
// The DU receives the 64-bit SASS-style instruction word from the fetch
// stage and produces the SM's control signals: validity, execution-unit
// steering, register/memory/branch flags, operand-field buffers, the
// comparison-op one-hot, the format one-hot, and one enable line per opcode
// (the per-op micro-enable bus driving the downstream pipeline).
//
// Input order:  instruction word bits 0..63 (see isa/instruction.h layout).
// Output order: documented in DuOutputIndex below; DuReference() in
// reference.h computes the same vector in software.
#pragma once

#include "netlist/netlist.h"

namespace gpustl::circuits {

/// Symbolic indices into the DU output vector.
struct DuOutputIndex {
  static constexpr int kValid = 0;
  static constexpr int kUnitOneHot = 1;   // 5 lines (ExecUnit order)
  static constexpr int kWritesReg = 6;
  static constexpr int kWritesPred = 7;
  static constexpr int kReadsMem = 8;
  static constexpr int kWritesMem = 9;
  static constexpr int kIsBranch = 10;
  static constexpr int kHasImm = 11;
  static constexpr int kPredicated = 12;
  static constexpr int kPredNeg = 13;
  static constexpr int kPredReg = 14;     // 2 lines
  static constexpr int kDst = 16;         // 6 lines
  static constexpr int kSrcA = 22;        // 6 lines
  static constexpr int kSrcB = 28;        // 6 lines
  static constexpr int kSrcC = 34;        // 6 lines
  static constexpr int kCmpOneHot = 40;   // 6 lines
  static constexpr int kFormatOneHot = 46;  // 8 lines (Format order)
  static constexpr int kOpEnable = 54;    // 52 lines, one per opcode
  static constexpr int kDstOneHot = 106;  // 64 lines: GPRF write-address
                                          // decoder (one line per register)
  static constexpr int kHazardA = 170;    // dst == src_a comparator
  static constexpr int kHazardB = 171;    // dst == src_b comparator
  static constexpr int kImmZero = 172;    // imm32 field is all zeros
  static constexpr int kImmSign = 173;    // imm32 sign bit
  static constexpr int kCount = 174;
};

/// Builds and freezes the DU netlist (64 inputs, DuOutputIndex::kCount
/// outputs).
netlist::Netlist BuildDecoderUnit();

}  // namespace gpustl::circuits
