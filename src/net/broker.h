// WorkBroker: the distrib claim protocol served over RPC.
//
// A local `gpustl-worker --dir` coordinates through the shared
// filesystem (units/, claims/, done/ — src/distrib). A remote worker has
// no shared filesystem, so the daemon brokers the same protocol over its
// TCP connection:
//
//   fetch    scan units, TryClaim one, ship the unit file bytes (hex)
//   renew    Heartbeat the claim (touches mtime — the coordinator's
//            stale-claim stealing keeps working if the daemon dies)
//   publish  upload a GSRE store entry; validated and installed atomically
//   done     MarkDone + Release
//   release  give the unit back without a done marker
//
// Leases mirror the file protocol's staleness rule on the server side:
// a unit fetched over RPC is released when the connection drops (session
// teardown) or when the worker stops renewing for `lease_seconds`
// (SweepExpired, driven by the connection's read-timeout slices). Either
// way the unit becomes claimable again immediately — a SIGKILLed remote
// worker's unit is re-issued exactly like a local worker's stale claim.
//
// Publishing bypasses ResultStore::Load/Store on purpose: the entry
// arrives as already-encoded GSRE bytes, so the broker validates the
// header (magic, version, key match, checksum) itself and installs via
// unique-temp + rename. The shared store object's hit/miss stats stay
// untouched — a remote publish is not a local cache event.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "distrib/claims.h"
#include "service/json.h"

namespace gpustl::net {

struct BrokerOptions {
  std::string distrib_dir;
  std::string cache_dir;
  /// Claim staleness horizon — also the RPC lease duration.
  double lease_seconds = 30.0;
};

class WorkBroker;

/// One remote worker's connection state. NOT thread-safe: owned and
/// driven by a single connection thread. The destructor releases every
/// still-held lease.
class BrokerSession {
 public:
  BrokerSession(const WorkBroker& broker, std::string owner);
  ~BrokerSession();

  BrokerSession(const BrokerSession&) = delete;
  BrokerSession& operator=(const BrokerSession&) = delete;

  /// Dispatches one worker RPC (fetch/renew/publish/done/release) and
  /// returns the response document. Unknown ops return an error reply;
  /// nothing throws.
  service::Json Handle(const service::Json& request);

  /// Releases leases whose last fetch/renew is older than the lease
  /// horizon. Called from the connection loop's timeout slices, so a
  /// worker that stops sending heartbeats loses its units even while the
  /// connection technically stays up.
  void SweepExpired();

  std::size_t held() const { return leases_.size(); }

 private:
  using Clock = std::chrono::steady_clock;

  service::Json Fetch();
  service::Json Renew(const service::Json& request);
  service::Json Publish(const service::Json& request);
  service::Json Finish(const service::Json& request, bool mark_done);

  const WorkBroker& broker_;
  distrib::ClaimBoard board_;
  std::map<std::string, Clock::time_point> leases_;  // unit -> last renew
};

/// Shared, immutable broker configuration; sessions are created per
/// connection. Thread-safe by virtue of being read-only — all mutable
/// coordination state lives in the distrib dir and the store dir, which
/// are multi-process safe by design.
class WorkBroker {
 public:
  explicit WorkBroker(BrokerOptions options) : options_(std::move(options)) {}

  const BrokerOptions& options() const { return options_; }

  /// True when the daemon was configured with a distrib dir (worker
  /// connections are refused otherwise).
  bool enabled() const { return !options_.distrib_dir.empty(); }

  std::unique_ptr<BrokerSession> OpenSession(std::string owner) const {
    return std::make_unique<BrokerSession>(*this, std::move(owner));
  }

 private:
  BrokerOptions options_;
};

}  // namespace gpustl::net
