// RunRemoteWorker: the gpustl-worker loop over TCP instead of a shared
// filesystem.
//
// Work units arrive as RPCs (net/broker.h): fetch a unit, renew its
// lease every lease/3 seconds while the simulation runs (the server also
// touches the claim-file mtime, so coordinator-side stale stealing keeps
// working), then publish the resulting store entry's bytes and mark the
// unit done. The simulation itself is the exact same UnitRunner the
// local worker uses, run against a private scratch store — the published
// GSRE bytes are therefore byte-identical to what a local worker would
// have written, and the server validates them (key + checksum) before
// installing.
//
// Connection loss at ANY point is survivable: the channel reconnects
// with backoff, publishes are content-addressed and idempotent, and a
// unit whose lease died with the old connection was already re-issued to
// someone else — finishing it here is duplicate work, never a wrong
// answer. Only a fatal handshake failure (bad secret) aborts the worker.
#pragma once

#include <atomic>
#include <string>

#include "distrib/worker.h"
#include "net/client.h"

namespace gpustl::net {

struct RemoteWorkerOptions {
  Endpoint endpoint;
  std::string secret;
  /// Diagnostic owner label for stats lines; "" = "pid:<pid>".
  std::string owner;
  /// Fault-sim threads per unit.
  int threads = 1;
  /// Idle poll interval when the daemon has no unit to hand out.
  int poll_ms = 200;
  /// Scratch directory for the local result store; "" = a fresh temp dir,
  /// removed on exit.
  std::string scratch_dir;
  /// Per-RPC response deadline.
  int rpc_deadline_ms = 30000;
  /// Reconnect schedule (per connect cycle; cycles repeat until `stop`).
  RetryPolicy retry;
  /// External stop flag (not owned; null = none).
  const std::atomic<bool>* stop = nullptr;
};

/// Runs until the daemon reports the campaign done, the stop flag is
/// raised, or a fatal handshake failure (throws Error). Returns the unit
/// totals in the same shape as the local worker.
distrib::WorkerStats RunRemoteWorker(const RemoteWorkerOptions& options);

}  // namespace gpustl::net
