#include "net/client.h"

#include <chrono>
#include <thread>

#include "net/handshake.h"

namespace gpustl::net {

using service::Json;

NetChannel::NetChannel(ChannelOptions options)
    : options_(std::move(options)), rng_(options_.rng_seed) {}

bool NetChannel::EnsureConnected(std::string* error, bool* fatal) {
  if (fatal != nullptr) *fatal = false;
  if (connected()) return true;
  conn_.reset();

  std::string last_error = "no attempts";
  for (int attempt = 0; attempt < options_.retry.attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          BackoffDelayMs(options_.retry, attempt - 1, rng_)));
    }
    const int fd = ConnectTcp(options_.endpoint, options_.connect_timeout_ms,
                              &last_error);
    if (fd < 0) continue;
    auto conn = std::make_unique<Conn>(fd, options_.limits);
    const HandshakeResult hs =
        ClientHandshake(*conn, options_.secret, options_.role,
                        options_.handshake_deadline_ms);
    if (hs.ok) {
      conn_ = std::move(conn);
      return true;
    }
    last_error = hs.error;
    if (hs.fatal) {
      if (fatal != nullptr) *fatal = true;
      if (error != nullptr) *error = last_error;
      return false;
    }
  }
  if (error != nullptr) {
    *error = "connect attempts exhausted: " + last_error;
  }
  return false;
}

std::optional<Json> NetChannel::Call(const Json& request,
                                     int read_deadline_ms,
                                     std::string_view chaos_tag) {
  if (!Send(request, chaos_tag)) return std::nullopt;
  Json reply;
  if (Read(&reply, read_deadline_ms, chaos_tag) != IoStatus::kOk) {
    return std::nullopt;
  }
  return reply;
}

bool NetChannel::Send(const Json& request, std::string_view chaos_tag) {
  if (!connected()) return false;
  if (conn_->WriteJson(request, options_.write_deadline_ms, chaos_tag) !=
      IoStatus::kOk) {
    Disconnect();
    return false;
  }
  return true;
}

IoStatus NetChannel::Read(Json* doc, int deadline_ms,
                          std::string_view chaos_tag) {
  if (!connected()) return IoStatus::kClosed;
  const IoStatus status = conn_->ReadJson(doc, deadline_ms, chaos_tag);
  if (status != IoStatus::kOk && status != IoStatus::kTimeout) {
    Disconnect();
  }
  return status;
}

void NetChannel::Disconnect() { conn_.reset(); }

std::string GenerateClientJobId() { return MakeNonce(); }

SubmitOutcome ResumableSubmit(
    NetChannel& channel, Json request, const std::string& client_job,
    const std::function<void(const Json&)>& on_event, int max_resumes) {
  SubmitOutcome outcome;
  std::uint64_t last_seq = 0;

  for (int resume = 0; resume <= max_resumes; ++resume) {
    std::string error;
    bool fatal = false;
    if (!channel.EnsureConnected(&error, &fatal)) {
      outcome.transport_error = true;
      outcome.transport_detail = error;
      return outcome;
    }
    request.Set("client_job", client_job);
    request.Set("after_seq", last_seq);
    if (!channel.Send(request, "submit")) continue;

    bool stream_ok = true;
    while (stream_ok) {
      Json event;
      const IoStatus status = channel.Read(&event, -1, "event");
      if (status != IoStatus::kOk) {
        stream_ok = false;  // reconnect and resume from last_seq
        break;
      }
      const auto seq = static_cast<std::uint64_t>(event.GetInt("seq", 0));
      if (seq != 0) {
        if (seq <= last_seq) continue;  // replayed overlap; already seen
        last_seq = seq;
      }
      on_event(event);
      const std::string kind = event.GetString("event", "");
      if (kind == "complete" || kind == "failed" || kind == "rejected") {
        outcome.terminal = event;
        return outcome;
      }
      if (kind == "error" && seq == 0) {
        // A protocol-level error outside any job stream is terminal for
        // this submit: the daemon will never produce job events for it.
        outcome.terminal = event;
        return outcome;
      }
    }
  }
  outcome.transport_error = true;
  outcome.transport_detail = "event stream resume budget exhausted";
  return outcome;
}

}  // namespace gpustl::net
