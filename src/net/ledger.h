// JobLedger: idempotent submits and resumable event streams.
//
// A TCP client cannot tell a lost request from a lost response: if the
// connection dies right after `submit`, the job may or may not be
// running. The ledger makes resubmission safe. Every remote submit
// carries a client-generated `client_job` id; the first arrival creates
// a ledger entry and actually starts the job, every later arrival with
// the same id attaches to the existing entry instead of starting a
// duplicate.
//
// Each entry records the job's full event history with a per-job
// sequence number ("seq", 1-based) stamped into every event. A client
// that reconnects re-sends the submit with `after_seq` = the last seq it
// saw; the ledger replays everything newer and then attaches the
// connection for live events — atomically, under the entry lock, so no
// event is duplicated or lost in the gap between replay and attach.
//
// Entries whose job reached a terminal event (complete/failed/rejected)
// are retained for a bounded number of jobs (LRU) so a client whose
// connection died just before the terminal event can still recover it.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "service/json.h"

namespace gpustl::net {

class JobLedger {
 public:
  /// Delivery callback for recorded events (seq already stamped). Called
  /// under the entry lock: keep it quick, and never call back into the
  /// ledger for the same job (mark a dead connection and drop instead).
  using Sink = std::function<void(const service::Json& event)>;

  /// `max_terminal`: finished entries retained for late reconnects.
  explicit JobLedger(std::size_t max_terminal = 256);

  struct OpenInfo {
    /// True when this call created the entry — the caller owns starting
    /// the actual job and must feed its events through `record`.
    bool created = false;
    /// Recording sink (only set when `created`): stamps seq, appends to
    /// the history, forwards to the attached delivery sink.
    std::function<void(const service::Json&)> record;
    /// Token for Detach.
    std::uint64_t attach_id = 0;
    /// The job had already reached its terminal event; the replay that
    /// just ran delivered it.
    bool terminal = false;
  };

  /// Idempotent open: creates the entry for `client_job` or attaches to
  /// the existing one. Replays events with seq > `after_seq` into
  /// `deliver` before attaching it (atomically). A later Open for the
  /// same job replaces the previous attachment — last connection wins.
  OpenInfo Open(const std::string& client_job, std::uint64_t after_seq,
                Sink deliver);

  /// Removes the attachment if `attach_id` is still the current one.
  void Detach(const std::string& client_job, std::uint64_t attach_id);

  /// Entries currently tracked (live + retained terminal). For tests.
  std::size_t size() const;

 private:
  struct Entry {
    std::mutex mu;
    std::deque<service::Json> events;  // events[i].seq == i+1
    Sink deliver;                      // attached connection, if any
    std::uint64_t attach_id = 0;
    bool terminal = false;
  };

  void RecordEvent(const std::shared_ptr<Entry>& entry,
                   const std::string& client_job,
                   const service::Json& event);
  void MarkTerminal(const std::string& client_job);

  const std::size_t max_terminal_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Entry>> entries_;
  std::list<std::string> terminal_lru_;  // oldest first
  std::uint64_t next_attach_id_ = 1;
};

}  // namespace gpustl::net
