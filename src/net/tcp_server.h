// TcpServer: gpustld's off-box listener.
//
// Serves two peer roles over the framed transport (net/frame.h), both
// authenticated by the shared-secret handshake (net/handshake.h):
//
//   clients  the gpustld op surface (ping/status/shutdown/submit), with
//            submit made idempotent and resumable by the JobLedger —
//            every TCP submit must carry a client-generated `client_job`
//            id and may carry `after_seq` to resume its event stream.
//   workers  the distrib claim protocol brokered as RPCs
//            (fetch/renew/publish/done/release — net/broker.h).
//
// Threading mirrors the AF_UNIX SocketServer: one accept loop
// multiplexing the listen socket and a self-pipe, one thread per
// connection. Event writes happen on service worker threads under a
// per-connection mutex with a bounded deadline — a peer that stops
// draining (chaos `slow-peer`) is disconnected, and its job's events
// keep accumulating in the ledger for the reconnect.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/broker.h"
#include "net/frame.h"
#include "net/ledger.h"
#include "net/net.h"
#include "service/service.h"

namespace gpustl::net {

struct TcpServerOptions {
  Endpoint endpoint;
  /// Shared handshake secret; empty accepts any peer.
  std::string secret;
  /// Handshake must finish within this budget.
  int handshake_deadline_ms = 10000;
  /// Per-frame write budget for events and replies (slow-peer bound).
  int write_deadline_ms = 30000;
  /// Worker-connection read slice: lease sweeps run at this cadence.
  int worker_slice_ms = 1000;
  FrameLimits limits;
};

class TcpServer {
 public:
  /// `broker` may be disabled (no distrib dir) — worker connections are
  /// then refused with an error frame.
  TcpServer(service::CampaignService& service, WorkBroker broker,
            TcpServerOptions options);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds and listens. False (with a diagnostic) on failure.
  bool Start(std::string* error);

  /// Accept loop; blocks until RequestStop.
  void Serve();

  /// Async-signal-safe stop (a single write to the self-pipe).
  void RequestStop();

  /// After Serve returns and the service is drained: wakes blocked
  /// connection readers and joins their threads.
  void JoinConnections();

  /// Invoked when a peer sends the `shutdown` op — gpustld uses it to
  /// also stop the AF_UNIX server. Set before Serve.
  void set_on_shutdown(std::function<void()> fn) {
    on_shutdown_ = std::move(fn);
  }

  /// The actual listening port (resolves `:0` ephemeral binds).
  std::uint16_t bound_port() const { return bound_port_; }

  /// Ledger introspection for tests.
  JobLedger& ledger() { return ledger_; }

 private:
  struct Connection;
  void HandleConnection(std::shared_ptr<Connection> conn);
  void ServeClient(const std::shared_ptr<Connection>& conn);
  void ServeWorker(const std::shared_ptr<Connection>& conn);

  service::CampaignService& service_;
  WorkBroker broker_;
  TcpServerOptions options_;
  JobLedger ledger_;
  std::function<void()> on_shutdown_;

  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::uint16_t bound_port_ = 0;
  std::atomic<bool> stopping_{false};

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace gpustl::net
