// Shared-secret connection handshake.
//
// The TCP listener is reachable from other machines, so unlike the
// AF_UNIX socket it cannot lean on filesystem permissions. The first
// exchange on every connection authenticates the peer:
//
//   server -> {op:"hello", proto:1, nonce:"<32 hex>"}
//   client -> {op:"auth", role:"client"|"worker", proof:"<32 hex>"}
//   server -> {op:"hello-ok"}            (or {op:"hello-fail", error:...})
//
// `proof` is Hash128(domain-tag, nonce, secret) — the secret never
// crosses the wire, and a replayed proof is useless against a fresh
// nonce. An empty server secret accepts any proof (trusted networks,
// tests). This is a keyed integrity check against accidental or casual
// connections, not a cryptographic authentication scheme; run the
// daemon behind a real network boundary for anything stronger.
//
// Failure taxonomy matters for the reconnect loops: `hello-fail` with
// error "bad-secret" is FATAL (retrying cannot help — the client gives
// up immediately), while a connection torn during the handshake (chaos
// site `handshake-fail`, a dying daemon, a mid-restart listener) is
// RETRYABLE and feeds the normal backoff schedule.
#pragma once

#include <string>

#include "net/frame.h"

namespace gpustl::net {

inline constexpr int kProtoVersion = 1;

/// Outcome of either side of the handshake.
struct HandshakeResult {
  bool ok = false;
  /// Set on failures that retrying cannot fix (bad secret, protocol
  /// version mismatch). Transport-level failures leave it false.
  bool fatal = false;
  /// Server side: the authenticated peer role ("client" or "worker").
  std::string role;
  std::string error;
};

/// The proof for a nonce/secret pair: 32 lowercase hex chars.
std::string AuthProof(const std::string& nonce_hex,
                      const std::string& secret);

/// A fresh per-connection nonce (32 hex chars). Unpredictable enough to
/// defeat proof replay; not a CSPRNG.
std::string MakeNonce();

/// Runs the server side on `conn`. Empty `secret` accepts any proof.
/// Chaos site `handshake-fail` aborts after the greeting (the peer sees
/// a torn connection and must treat it as retryable). On failure the
/// connection is closed.
HandshakeResult ServerHandshake(Conn& conn, const std::string& secret,
                                int deadline_ms);

/// Runs the client side on `conn`, announcing `role`. On failure the
/// connection is closed; check `fatal` before scheduling a retry.
HandshakeResult ClientHandshake(Conn& conn, const std::string& secret,
                                const std::string& role, int deadline_ms);

}  // namespace gpustl::net
