// Client-side transport: reconnecting channel + resumable submit.
//
// NetChannel wraps connect → handshake → framed I/O with the retry
// policy every off-box peer shares: exponential backoff with jitter
// between connect cycles, immediate abort on fatal handshake failures
// (bad secret, protocol mismatch) — retrying those would hammer a daemon
// that will never say yes.
//
// ResumableSubmit is the full client half of the idempotent submit
// protocol: it stamps the request with a client-generated job id, tracks
// the highest event `seq` it has seen, and on any mid-stream disconnect
// reconnects and re-sends the same submit with `after_seq` — the daemon
// side (JobLedger) dedupes the job and replays only the missing tail, so
// the observed event stream has no duplicated and no lost events, ending
// in exactly one terminal event.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "common/rng.h"
#include "net/frame.h"
#include "net/net.h"

namespace gpustl::net {

struct ChannelOptions {
  Endpoint endpoint;
  std::string secret;
  std::string role = "client";  // or "worker"
  RetryPolicy retry;
  int connect_timeout_ms = 5000;
  int handshake_deadline_ms = 10000;
  int write_deadline_ms = 30000;
  /// Jitter stream seed — fixed by tests for reproducible backoff.
  std::uint64_t rng_seed = 0x6e65742d636c69ull;
  FrameLimits limits;
};

class NetChannel {
 public:
  explicit NetChannel(ChannelOptions options);

  /// Connects and handshakes if not already connected, retrying up to
  /// `retry.attempts` cycles with backoff. Returns false with a
  /// diagnostic; `fatal` (nullable) is set when retrying is pointless.
  bool EnsureConnected(std::string* error, bool* fatal = nullptr);

  /// One request/response round trip (the worker RPC shape). Returns
  /// nullopt on any transport failure — the connection is dropped and
  /// the next EnsureConnected reconnects.
  std::optional<service::Json> Call(const service::Json& request,
                                    int read_deadline_ms,
                                    std::string_view chaos_tag = {});

  /// One-way send / read for the client event-stream shape.
  bool Send(const service::Json& request, std::string_view chaos_tag = {});
  IoStatus Read(service::Json* doc, int deadline_ms,
                std::string_view chaos_tag = {});

  void Disconnect();
  bool connected() const { return conn_ != nullptr && !conn_->closed(); }

  const ChannelOptions& options() const { return options_; }

 private:
  ChannelOptions options_;
  Rng rng_;
  std::unique_ptr<Conn> conn_;
};

/// A fresh client job id (32 hex chars), unique across processes.
std::string GenerateClientJobId();

struct SubmitOutcome {
  /// Transport gave out (connect attempts exhausted, fatal handshake
  /// failure, or too many mid-stream disconnects) — maps to the client
  /// tool's exit code 5. The job may still be running on the daemon.
  bool transport_error = false;
  std::string transport_detail;
  /// The terminal event (complete/failed/rejected) when !transport_error.
  service::Json terminal;
};

/// Drives `submit` to its terminal event with reconnect + resume.
/// `request` is the submit document (client_job/after_seq are managed
/// here); `on_event` sees every event exactly once, in order, including
/// the terminal one. `max_resumes` bounds mid-stream reconnect cycles.
SubmitOutcome ResumableSubmit(NetChannel& channel, service::Json request,
                              const std::string& client_job,
                              const std::function<void(const service::Json&)>& on_event,
                              int max_resumes = 32);

}  // namespace gpustl::net
