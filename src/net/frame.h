// Length-framed NDJSON over a stream socket.
//
// One frame carries one JSON document:
//
//   <decimal payload length>\n<payload bytes>\n
//
// The explicit length makes two failure modes cheap and deterministic:
// a peer streaming an over-long (or endless) frame is rejected with
// `frame-too-large` after reading at most the header, and a torn frame
// (connection lost mid-payload, or chaos `partial-write`) is detected
// by the missing terminator instead of silently concatenating with the
// next frame. The trailing newline keeps payloads NDJSON-compatible for
// eyeballing with `tcpdump -A` or `socat`.
//
// Every read and write takes a deadline: a peer that stops draining its
// receive buffer (chaos `slow-peer`) blows the write deadline and is
// disconnected — per-connection memory stays bounded by one frame, never
// an unbounded backlog. Chaos sites `conn-drop` / `partial-write` /
// `slow-peer` are injected here so every transport user inherits them.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>
#include <string_view>

#include "service/json.h"

namespace gpustl::net {

enum class IoStatus {
  kOk = 0,
  kTimeout,        // deadline expired (write: slow peer; read: silent peer)
  kClosed,         // orderly EOF or connection reset
  kFrameTooLarge,  // declared length exceeds the limit — reject + close
  kTorn,           // malformed header or missing terminator
  kError,          // errno-level failure
};

/// Human token for diagnostics ("timeout", "frame-too-large", ...).
std::string_view IoStatusName(IoStatus status);

struct FrameLimits {
  /// Maximum payload bytes per frame, both directions. Store-entry
  /// uploads are the largest legitimate frames; 64 MiB dwarfs them.
  std::size_t max_frame_bytes = 64ull << 20;
};

/// One framed stream connection. Owns the fd (released only on
/// destruction) and a read buffer bounded by the frame limit. One thread
/// may read while another writes (distinct socket directions); writers
/// serialize externally (the server wraps writes in a per-connection
/// mutex). A failure on either side shuts the socket down and marks the
/// conn closed, but the descriptor number stays reserved until the
/// destructor — a concurrently blocked reader wakes on the shutdown
/// instead of ever touching a recycled fd.
class Conn {
 public:
  /// Takes ownership of `fd` and switches it to non-blocking (deadlines
  /// are enforced with poll).
  explicit Conn(int fd, FrameLimits limits = {});
  ~Conn();

  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  /// Writes one frame. `deadline_ms` < 0 waits forever. `chaos_tag`
  /// qualifies the conn-drop/partial-write/slow-peer sites so tests can
  /// target, say, the 3rd event write (`conn-drop@event#3`). Any
  /// non-kOk result closes the connection (a half-written frame is
  /// unrecoverable).
  IoStatus WriteFrame(std::string_view payload, int deadline_ms,
                      std::string_view chaos_tag = {});

  /// Reads one frame into `payload`. `deadline_ms` < 0 waits forever.
  /// kFrameTooLarge and kTorn close the connection (the stream cannot be
  /// resynchronized); kTimeout leaves it open — partial input stays
  /// buffered and the next call resumes.
  IoStatus ReadFrame(std::string* payload, int deadline_ms,
                     std::string_view chaos_tag = {});

  /// JSON conveniences: Dump/Parse around the frame. An unparsable
  /// payload reads as kTorn (one frame = one document is the protocol).
  IoStatus WriteJson(const service::Json& doc, int deadline_ms,
                     std::string_view chaos_tag = {});
  IoStatus ReadJson(service::Json* doc, int deadline_ms,
                    std::string_view chaos_tag = {});

  /// Wakes a blocked reader/writer on another thread (returns kClosed
  /// there). Idempotent; does not release the fd.
  void Shutdown();

  bool closed() const { return dead_.load(std::memory_order_acquire); }
  int fd() const { return fd_; }

 private:
  /// Marks the conn dead and shuts the socket down (both directions).
  void Kill();

  int fd_ = -1;
  std::atomic<bool> dead_{false};
  FrameLimits limits_;
  std::string buffer_;  // unread bytes; bounded by header + frame + 1
};

}  // namespace gpustl::net
