#include "net/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/strutil.h"

namespace gpustl::net {

namespace {

void SetError(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

/// Resolves `host` to an IPv4 sockaddr_in. Numeric addresses never touch
/// the resolver.
bool ResolveHost(const std::string& host, in_addr* out, std::string* error) {
  if (::inet_pton(AF_INET, host.c_str(), out) == 1) return true;
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &result);
  if (rc != 0 || result == nullptr) {
    SetError(error, "cannot resolve " + host + ": " + ::gai_strerror(rc));
    return false;
  }
  *out = reinterpret_cast<sockaddr_in*>(result->ai_addr)->sin_addr;
  ::freeaddrinfo(result);
  return true;
}

}  // namespace

std::optional<Endpoint> ParseEndpoint(std::string_view text,
                                      std::string* error) {
  const auto colon = text.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 == text.size()) {
    SetError(error, "expected host:port, got '" + std::string(text) + "'");
    return std::nullopt;
  }
  const auto port = ParseInt(text.substr(colon + 1));
  if (!port || *port < 0 || *port > 65535) {
    SetError(error, "bad port in '" + std::string(text) + "'");
    return std::nullopt;
  }
  Endpoint ep;
  ep.host = std::string(text.substr(0, colon));
  ep.port = static_cast<std::uint16_t>(*port);
  return ep;
}

std::string HexEncode(std::string_view bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const char c : bytes) {
    const auto b = static_cast<unsigned char>(c);
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

std::optional<std::string> HexDecode(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::string out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

int BackoffDelayMs(const RetryPolicy& policy, int attempt, Rng& rng) {
  const int shift = std::min(attempt, 20);  // 2^20 * base already caps
  double delay = static_cast<double>(policy.base_ms) *
                 static_cast<double>(1u << shift);
  delay = std::min(delay, static_cast<double>(policy.max_ms));
  const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  delay *= 1.0 - jitter * rng.uniform();
  return std::max(1, static_cast<int>(delay));
}

int ListenTcp(const Endpoint& endpoint, std::string* error,
              std::uint16_t* bound_port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  if (!ResolveHost(endpoint.host, &addr.sin_addr, error)) return -1;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    SetError(error, std::string("socket: ") + std::strerror(errno));
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    SetError(error, "bind " + endpoint.host + ":" +
                        std::to_string(endpoint.port) + ": " +
                        std::strerror(errno));
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 64) != 0) {
    SetError(error, std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return -1;
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      *bound_port = ntohs(bound.sin_port);
    }
  }
  return fd;
}

int ConnectTcp(const Endpoint& endpoint, int timeout_ms, std::string* error) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  if (!ResolveHost(endpoint.host, &addr.sin_addr, error)) return -1;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    SetError(error, std::string("socket: ") + std::strerror(errno));
    return -1;
  }
  // Nonblocking connect + poll gives the bounded wait; the fd goes back to
  // blocking before it is handed out (Conn manages its own readiness).
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int rc =
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    SetError(error, "connect " + endpoint.host + ":" +
                        std::to_string(endpoint.port) + ": " +
                        std::strerror(errno));
    ::close(fd);
    return -1;
  }
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    if (ready > 0) {
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len);
    }
    if (ready <= 0 || soerr != 0) {
      SetError(error, "connect " + endpoint.host + ":" +
                          std::to_string(endpoint.port) + ": " +
                          (ready <= 0 ? "timed out"
                                      : std::strerror(soerr)));
      ::close(fd);
      return -1;
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace gpustl::net
