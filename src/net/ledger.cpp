#include "net/ledger.h"

namespace gpustl::net {

namespace {

bool IsTerminalEvent(const service::Json& event) {
  const std::string kind = event.GetString("event", "");
  return kind == "complete" || kind == "failed" || kind == "rejected";
}

}  // namespace

JobLedger::JobLedger(std::size_t max_terminal)
    : max_terminal_(max_terminal) {}

JobLedger::OpenInfo JobLedger::Open(const std::string& client_job,
                                    std::uint64_t after_seq, Sink deliver) {
  std::shared_ptr<Entry> entry;
  OpenInfo info;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(client_job);
    if (it == entries_.end()) {
      entry = std::make_shared<Entry>();
      entries_.emplace(client_job, entry);
      info.created = true;
      // The recording closure holds the entry alive independently of the
      // map, so LRU eviction can never race a still-running job.
      info.record = [this, entry, client_job](const service::Json& event) {
        RecordEvent(entry, client_job, event);
      };
    } else {
      entry = it->second;
    }
    info.attach_id = next_attach_id_++;
  }

  std::lock_guard<std::mutex> lock(entry->mu);
  // Replay-then-attach under the entry lock: a concurrent RecordEvent
  // either lands before (and is replayed) or after (and is delivered
  // live) — never both, never neither.
  for (std::size_t i = after_seq; i < entry->events.size(); ++i) {
    deliver(entry->events[i]);
  }
  entry->deliver = std::move(deliver);
  entry->attach_id = info.attach_id;
  info.terminal = entry->terminal;
  return info;
}

void JobLedger::Detach(const std::string& client_job,
                       std::uint64_t attach_id) {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(client_job);
    if (it == entries_.end()) return;
    entry = it->second;
  }
  std::lock_guard<std::mutex> lock(entry->mu);
  if (entry->attach_id == attach_id) {
    entry->deliver = nullptr;
    entry->attach_id = 0;
  }
}

std::size_t JobLedger::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void JobLedger::RecordEvent(const std::shared_ptr<Entry>& entry,
                            const std::string& client_job,
                            const service::Json& event) {
  bool terminal = false;
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    service::Json stamped = event;
    stamped.Set("seq",
                static_cast<std::uint64_t>(entry->events.size() + 1));
    stamped.Set("client_job", client_job);
    entry->events.push_back(stamped);
    if (entry->deliver) entry->deliver(entry->events.back());
    if (!entry->terminal && IsTerminalEvent(stamped)) {
      entry->terminal = true;
      terminal = true;
    }
  }
  if (terminal) MarkTerminal(client_job);
}

void JobLedger::MarkTerminal(const std::string& client_job) {
  std::lock_guard<std::mutex> lock(mu_);
  terminal_lru_.push_back(client_job);
  while (terminal_lru_.size() > max_terminal_) {
    entries_.erase(terminal_lru_.front());
    terminal_lru_.pop_front();
  }
}

}  // namespace gpustl::net
