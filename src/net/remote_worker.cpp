#include "net/remote_worker.h"

#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>

#include "common/error.h"
#include "distrib/units.h"
#include "store/result_store.h"

namespace gpustl::net {

namespace fs = std::filesystem;
using service::Json;

namespace {

/// Sends `renew` every lease/3 seconds while a simulation runs. Owns the
/// channel for its lifetime — the compute thread must not touch it until
/// the destructor joins.
class RenewThread {
 public:
  RenewThread(NetChannel& channel, std::string unit, double lease_seconds,
              int rpc_deadline_ms)
      : channel_(channel),
        unit_(std::move(unit)),
        period_(std::max(0.5, lease_seconds / 3.0)),
        rpc_deadline_ms_(rpc_deadline_ms),
        thread_([this] { Loop(); }) {}

  ~RenewThread() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_one();
    thread_.join();
  }

  /// The lease is gone (server said lease-lost, or the connection died).
  bool lost() const { return lost_.load(std::memory_order_relaxed); }

 private:
  void Loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!cv_.wait_for(lock, std::chrono::duration<double>(period_),
                         [this] { return stop_; })) {
      Json renew;
      renew.Set("op", "renew");
      renew.Set("unit", unit_);
      const auto reply = channel_.Call(renew, rpc_deadline_ms_, "renew");
      if (!reply || reply->GetString("op", "") != "ok") {
        lost_.store(true, std::memory_order_relaxed);
        return;  // keep computing; the result is still worth publishing
      }
    }
  }

  NetChannel& channel_;
  const std::string unit_;
  const double period_;
  const int rpc_deadline_ms_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::atomic<bool> lost_{false};
  std::thread thread_;
};

}  // namespace

distrib::WorkerStats RunRemoteWorker(const RemoteWorkerOptions& options) {
  const std::string owner =
      options.owner.empty() ? "pid:" + std::to_string(::getpid())
                            : options.owner;

  std::string scratch = options.scratch_dir;
  bool own_scratch = false;
  if (scratch.empty()) {
    std::string tmpl = (fs::temp_directory_path() / "gpustl-net-XXXXXX");
    if (::mkdtemp(tmpl.data()) == nullptr) {
      throw Error("remote worker: cannot create scratch dir");
    }
    scratch = tmpl;
    own_scratch = true;
  }

  store::ResultStore store(scratch);
  distrib::UnitRunner::Config runner_config;
  runner_config.threads = options.threads;
  distrib::UnitRunner runner(store, runner_config);

  ChannelOptions copts;
  copts.endpoint = options.endpoint;
  copts.secret = options.secret;
  copts.role = "worker";
  copts.retry = options.retry;
  NetChannel channel(copts);

  distrib::WorkerStats stats;
  const auto stopping = [&options] {
    return options.stop != nullptr &&
           options.stop->load(std::memory_order_relaxed);
  };

  while (!stopping()) {
    std::string error;
    bool fatal = false;
    if (!channel.EnsureConnected(&error, &fatal)) {
      if (fatal) {
        if (own_scratch) {
          std::error_code ec;
          fs::remove_all(scratch, ec);
        }
        throw Error("remote worker: " + error);
      }
      // The daemon is unreachable right now; a worker is a patient
      // process. EnsureConnected already slept through its backoff
      // schedule — go around again until stopped.
      continue;
    }

    Json fetch;
    fetch.Set("op", "fetch");
    const auto reply = channel.Call(fetch, options.rpc_deadline_ms, "fetch");
    if (!reply) continue;  // dropped; reconnect next pass

    const std::string op = reply->GetString("op", "");
    if (op == "idle") {
      if (reply->GetBool("done", false)) break;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options.poll_ms));
      continue;
    }
    if (op != "unit") {
      std::fprintf(stderr, "gpustl-worker[%s]: daemon says: %s\n",
                   owner.c_str(),
                   reply->GetString("error", "unexpected reply").c_str());
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options.poll_ms));
      continue;
    }

    const std::string name = reply->GetString("unit", "");
    const double lease = reply->GetDouble("lease_seconds", 30.0);
    const auto bytes = HexDecode(reply->GetString("data", ""));
    if (name.empty() || !bytes) {
      ++stats.failures;
      continue;
    }
    // The unit codec is path-based; round-trip through the scratch dir.
    const std::string unit_path = scratch + "/" + name + ".unit";
    {
      std::ofstream out(unit_path, std::ios::binary | std::ios::trunc);
      out.write(bytes->data(), static_cast<std::streamsize>(bytes->size()));
    }
    const auto unit = distrib::ReadUnitFile(unit_path);
    {
      std::error_code ec;
      fs::remove(unit_path, ec);
    }
    if (!unit) {
      ++stats.failures;
      continue;
    }

    try {
      store::StoreKey key;
      {
        RenewThread renew(channel, name, lease, options.rpc_deadline_ms);
        key = runner.Run(*unit);
        if (renew.lost()) ++stats.steals;  // re-issued elsewhere; harmless
      }

      std::string entry_bytes;
      {
        std::ifstream in(store.EntryPath(key), std::ios::binary);
        entry_bytes.assign(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
      }
      if (entry_bytes.empty()) {
        throw Error("remote worker: missing scratch entry for " + name);
      }

      Json publish;
      publish.Set("op", "publish");
      publish.Set("key", key.ToHex());
      publish.Set("data", HexEncode(entry_bytes));
      auto pub = channel.Call(publish, options.rpc_deadline_ms, "publish");
      if (!pub) {
        // Publish the result on a fresh connection: it is content-
        // addressed, so landing it late is never wrong.
        if (!channel.EnsureConnected(&error, &fatal) || fatal) {
          throw Error("remote worker: publish failed: " + error);
        }
        pub = channel.Call(publish, options.rpc_deadline_ms, "publish");
      }
      if (!pub || pub->GetString("op", "") != "ok") {
        throw Error("remote worker: publish rejected: " +
                    (pub ? pub->GetString("error", "?") : "disconnected"));
      }

      Json done;
      done.Set("op", "done");
      done.Set("unit", name);
      channel.Call(done, options.rpc_deadline_ms, "done");

      ++stats.units_done;
      if (name.rfind("w2-", 0) == 0) ++stats.wave2_units;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "gpustl-worker[%s]: unit %s failed: %s\n",
                   owner.c_str(), name.c_str(), e.what());
      ++stats.failures;
      Json release;
      release.Set("op", "release");
      release.Set("unit", name);
      channel.Call(release, options.rpc_deadline_ms, "release");
    }
  }

  if (own_scratch) {
    std::error_code ec;
    fs::remove_all(scratch, ec);
  }
  return stats;
}

}  // namespace gpustl::net
