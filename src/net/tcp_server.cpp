#include "net/tcp_server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include "common/error.h"
#include "net/handshake.h"
#include "service/protocol.h"

namespace gpustl::net {

using service::Json;

struct TcpServer::Connection {
  explicit Connection(int fd, FrameLimits limits) : conn(fd, limits) {}

  Conn conn;
  std::mutex write_mu;
  bool broken = false;  // a write failed; drop further sends (write_mu)

  // Ledger attachments made by this connection's reader thread (reader
  // thread only; detached when the connection ends).
  std::vector<std::pair<std::string, std::uint64_t>> attachments;

  /// Serialized, deadline-bounded frame write. Returns false once the
  /// connection is broken; never detaches from the ledger here (the
  /// reader thread owns that) — events simply stop being delivered and
  /// keep accumulating in the ledger.
  bool WriteDoc(const Json& doc, int deadline_ms,
                std::string_view chaos_tag) {
    std::lock_guard<std::mutex> lock(write_mu);
    if (broken || conn.closed()) return false;
    if (conn.WriteJson(doc, deadline_ms, chaos_tag) != IoStatus::kOk) {
      broken = true;
      return false;
    }
    return true;
  }
};

TcpServer::TcpServer(service::CampaignService& service, WorkBroker broker,
                     TcpServerOptions options)
    : service_(service),
      broker_(std::move(broker)),
      options_(std::move(options)) {}

TcpServer::~TcpServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (stop_pipe_[0] >= 0) ::close(stop_pipe_[0]);
  if (stop_pipe_[1] >= 0) ::close(stop_pipe_[1]);
}

bool TcpServer::Start(std::string* error) {
  if (::pipe(stop_pipe_) != 0) {
    if (error) *error = "pipe failed";
    return false;
  }
  listen_fd_ = ListenTcp(options_.endpoint, error, &bound_port_);
  return listen_fd_ >= 0;
}

void TcpServer::RequestStop() {
  const char byte = 's';
  [[maybe_unused]] const ssize_t n = ::write(stop_pipe_[1], &byte, 1);
}

void TcpServer::Serve() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {stop_pipe_[0], POLLIN, 0};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) {
      stopping_.store(true, std::memory_order_relaxed);
      break;
    }
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    auto conn = std::make_shared<Connection>(fd, options_.limits);
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(conn);
    conn_threads_.emplace_back(
        [this, conn] { HandleConnection(std::move(conn)); });
  }
}

void TcpServer::JoinConnections() {
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& conn : conns_) conn->conn.Shutdown();
  }
  for (std::thread& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
}

void TcpServer::HandleConnection(std::shared_ptr<Connection> conn) {
  const HandshakeResult hs = ServerHandshake(
      conn->conn, options_.secret, options_.handshake_deadline_ms);
  if (!hs.ok) return;
  if (hs.role == "worker") {
    ServeWorker(conn);
  } else {
    ServeClient(conn);
  }
  for (const auto& [client_job, attach_id] : conn->attachments) {
    ledger_.Detach(client_job, attach_id);
  }
}

void TcpServer::ServeClient(const std::shared_ptr<Connection>& conn) {
  while (!conn->conn.closed()) {
    Json request;
    // Infinite read: a client parked between requests waiting for job
    // events is normal. JoinConnections wakes us via Shutdown.
    const IoStatus status = conn->conn.ReadJson(&request, -1, "request");
    if (status != IoStatus::kOk) break;

    const std::string op = service::RequestOp(request);
    if (op == "ping") {
      conn->WriteDoc(service::EventPong(), options_.write_deadline_ms,
                     "reply");
    } else if (op == "status") {
      conn->WriteDoc(service_.Status(), options_.write_deadline_ms,
                     "reply");
    } else if (op == "shutdown") {
      Json ok = Json::Object();
      ok.Set("event", "ok");
      conn->WriteDoc(ok, options_.write_deadline_ms, "reply");
      if (on_shutdown_) on_shutdown_();
      RequestStop();
      break;
    } else if (op == "submit") {
      const std::string client_job = request.GetString("client_job", "");
      if (client_job.empty()) {
        conn->WriteDoc(
            service::EventRejected(0, "bad-request",
                                   "submit over TCP requires client_job"),
            options_.write_deadline_ms, "event");
        continue;
      }
      const auto after_seq =
          static_cast<std::uint64_t>(request.GetInt("after_seq", 0));
      const int deadline = options_.write_deadline_ms;
      auto info = ledger_.Open(
          client_job, after_seq, [conn, deadline](const Json& event) {
            conn->WriteDoc(event, deadline, "event");
          });
      conn->attachments.emplace_back(client_job, info.attach_id);
      if (!info.created) continue;  // dedup: replay + attach did the work

      service::SubmitRequest req;
      std::string error;
      if (!service::ParseSubmitRequest(request, &req, &error)) {
        // Recorded, not just written: a resubmit of a malformed job
        // replays the same rejection instead of dangling forever.
        info.record(service::EventRejected(0, "bad-request", error));
        continue;
      }
      service::JobSpec spec;
      try {
        spec = service::MakeJobSpec(req);
      } catch (const Error& e) {
        info.record(service::EventRejected(0, "bad-request", e.what()));
        continue;
      }
      service_.Submit(std::move(spec), info.record);
    } else {
      conn->WriteDoc(service::EventError("unknown op: " + op),
                     options_.write_deadline_ms, "reply");
    }
  }
}

void TcpServer::ServeWorker(const std::shared_ptr<Connection>& conn) {
  if (!broker_.enabled()) {
    Json deny;
    deny.Set("op", "error");
    deny.Set("error", "daemon has no distrib dir (start with --distrib)");
    conn->WriteDoc(deny, options_.write_deadline_ms, "reply");
    return;
  }
  auto session = broker_.OpenSession(
      "tcp-worker-" + std::to_string(conn->conn.fd()) + "-" +
      std::to_string(static_cast<unsigned long>(::getpid())));
  while (!conn->conn.closed() &&
         !stopping_.load(std::memory_order_relaxed)) {
    Json request;
    const IoStatus status =
        conn->conn.ReadJson(&request, options_.worker_slice_ms, "request");
    if (status == IoStatus::kTimeout) {
      // Heartbeat-loss path: a worker that went quiet without
      // disconnecting loses its leases after the horizon.
      session->SweepExpired();
      continue;
    }
    if (status != IoStatus::kOk) break;
    if (!conn->WriteDoc(session->Handle(request),
                        options_.write_deadline_ms, "reply")) {
      break;
    }
  }
  // ~BrokerSession releases every held lease: a SIGKILLed remote worker's
  // unit is back in the pool the moment its connection dies.
}

}  // namespace gpustl::net
