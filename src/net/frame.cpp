#include "net/frame.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/chaos.h"

namespace gpustl::net {

namespace {

using Clock = std::chrono::steady_clock;

/// Longest sane header: 20 digits covers any u64 length.
constexpr std::size_t kMaxHeaderDigits = 20;

/// Remaining budget in ms for poll(2); -1 = infinite, 0 = expired.
int RemainingMs(const Clock::time_point& deadline, bool infinite) {
  if (infinite) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  return left <= 0 ? 0 : static_cast<int>(left);
}

}  // namespace

std::string_view IoStatusName(IoStatus status) {
  switch (status) {
    case IoStatus::kOk:
      return "ok";
    case IoStatus::kTimeout:
      return "timeout";
    case IoStatus::kClosed:
      return "closed";
    case IoStatus::kFrameTooLarge:
      return "frame-too-large";
    case IoStatus::kTorn:
      return "torn-frame";
    case IoStatus::kError:
      return "io-error";
  }
  return "?";
}

Conn::Conn(int fd, FrameLimits limits) : fd_(fd), limits_(limits) {
  if (fd_ >= 0) {
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  }
}

Conn::~Conn() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Conn::Kill() {
  if (!dead_.exchange(true, std::memory_order_acq_rel) && fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
  }
}

void Conn::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

IoStatus Conn::WriteFrame(std::string_view payload, int deadline_ms,
                          std::string_view chaos_tag) {
  if (fd_ < 0 || closed()) return IoStatus::kClosed;
  if (payload.size() > limits_.max_frame_bytes) {
    Kill();
    return IoStatus::kFrameTooLarge;
  }
  if (chaos::Fail(chaos::Site::kConnDrop, chaos_tag)) {
    Kill();
    return IoStatus::kClosed;
  }
  if (chaos::Fail(chaos::Site::kSlowPeer, chaos_tag)) {
    // The peer stopped draining: the write deadline expires with the
    // frame stuck in our buffer. Same observable outcome, no real stall.
    Kill();
    return IoStatus::kTimeout;
  }

  std::string frame = std::to_string(payload.size());
  frame.push_back('\n');
  frame.append(payload);
  frame.push_back('\n');

  std::size_t limit = frame.size();
  bool drop_after_prefix = false;
  if (chaos::Fail(chaos::Site::kPartialWrite, chaos_tag)) {
    limit = frame.size() / 2;
    drop_after_prefix = true;
  }

  const bool infinite = deadline_ms < 0;
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(infinite ? 0 : deadline_ms);
  std::size_t off = 0;
  while (off < limit) {
    const ssize_t n =
        ::send(fd_, frame.data() + off, limit - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const int wait = RemainingMs(deadline, infinite);
      if (wait == 0) {
        Kill();
        return IoStatus::kTimeout;
      }
      pollfd pfd{fd_, POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, wait);
      if (ready < 0 && errno != EINTR) {
        Kill();
        return IoStatus::kError;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Kill();
    return errno == EPIPE || errno == ECONNRESET ? IoStatus::kClosed
                                                 : IoStatus::kError;
  }
  if (drop_after_prefix) {
    Kill();
    return IoStatus::kClosed;
  }
  return IoStatus::kOk;
}

IoStatus Conn::ReadFrame(std::string* payload, int deadline_ms,
                         std::string_view chaos_tag) {
  if (fd_ < 0 || closed()) return IoStatus::kClosed;
  if (chaos::Fail(chaos::Site::kConnDrop, chaos_tag)) {
    Kill();
    return IoStatus::kClosed;
  }

  const bool infinite = deadline_ms < 0;
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(infinite ? 0 : deadline_ms);

  while (true) {
    // Try to parse a complete frame out of what is buffered.
    const auto nl = buffer_.find('\n');
    if (nl != std::string::npos || buffer_.size() > kMaxHeaderDigits) {
      if (nl == std::string::npos || nl == 0 || nl > kMaxHeaderDigits) {
        Kill();
        return IoStatus::kTorn;
      }
      std::size_t length = 0;
      for (std::size_t i = 0; i < nl; ++i) {
        const char c = buffer_[i];
        if (c < '0' || c > '9') {
          Kill();
          return IoStatus::kTorn;
        }
        length = length * 10 + static_cast<std::size_t>(c - '0');
      }
      if (length > limits_.max_frame_bytes) {
        Kill();
        return IoStatus::kFrameTooLarge;
      }
      const std::size_t total = nl + 1 + length + 1;
      if (buffer_.size() >= total) {
        if (buffer_[total - 1] != '\n') {
          Kill();
          return IoStatus::kTorn;
        }
        payload->assign(buffer_, nl + 1, length);
        buffer_.erase(0, total);
        return IoStatus::kOk;
      }
    }

    // Need more bytes.
    char chunk[16384];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      Kill();
      // EOF mid-frame is a torn frame; EOF on a clean boundary is a
      // normal close.
      return buffer_.empty() ? IoStatus::kClosed : IoStatus::kTorn;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      const int wait = RemainingMs(deadline, infinite);
      if (wait == 0) return IoStatus::kTimeout;  // conn stays usable
      pollfd pfd{fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, wait);
      if (ready < 0 && errno != EINTR) {
        Kill();
        return IoStatus::kError;
      }
      continue;
    }
    Kill();
    return errno == ECONNRESET ? IoStatus::kClosed : IoStatus::kError;
  }
}

IoStatus Conn::WriteJson(const service::Json& doc, int deadline_ms,
                         std::string_view chaos_tag) {
  return WriteFrame(doc.Dump(), deadline_ms, chaos_tag);
}

IoStatus Conn::ReadJson(service::Json* doc, int deadline_ms,
                        std::string_view chaos_tag) {
  std::string payload;
  const IoStatus status = ReadFrame(&payload, deadline_ms, chaos_tag);
  if (status != IoStatus::kOk) return status;
  auto parsed = service::Json::Parse(payload);
  if (!parsed) {
    Kill();
    return IoStatus::kTorn;
  }
  *doc = std::move(*parsed);
  return IoStatus::kOk;
}

}  // namespace gpustl::net
