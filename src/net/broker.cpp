#include "net/broker.h"

#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/hash.h"
#include "distrib/units.h"
#include "net/net.h"

namespace gpustl::net {

namespace fs = std::filesystem;

namespace {

constexpr std::size_t kEntryHeaderBytes = 4 + 4 + 16 + 8 + 16;

std::uint32_t GetU32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

std::uint64_t GetU64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

service::Json ErrorReply(std::string error) {
  service::Json reply;
  reply.Set("op", "error");
  reply.Set("error", std::move(error));
  return reply;
}

service::Json OkReply() {
  service::Json reply;
  reply.Set("op", "ok");
  return reply;
}

/// Validates an uploaded GSRE entry against the claimed key: header
/// magic/version, embedded key, declared payload size, and payload
/// checksum (same "gpustl-entry-v1" domain the store writes). Returns an
/// empty string when the bytes are a well-formed entry for `key`.
std::string ValidateEntry(const std::string& bytes, const Hash128& key) {
  if (bytes.size() < kEntryHeaderBytes) return "truncated header";
  if (std::memcmp(bytes.data(), "GSRE", 4) != 0) return "bad magic";
  if (GetU32(bytes.data() + 4) != 1) return "format version mismatch";
  if (GetU64(bytes.data() + 8) != key.lo ||
      GetU64(bytes.data() + 16) != key.hi) {
    return "key mismatch";
  }
  const std::uint64_t payload_size = GetU64(bytes.data() + 24);
  if (payload_size != bytes.size() - kEntryHeaderBytes) {
    return "payload size mismatch";
  }
  Hasher128 h;
  h.AddString("gpustl-entry-v1");
  h.AddBytes(bytes.data() + kEntryHeaderBytes, payload_size);
  const Hash128 sum = h.Finish();
  if (sum.lo != GetU64(bytes.data() + 32) ||
      sum.hi != GetU64(bytes.data() + 40)) {
    return "checksum mismatch";
  }
  return "";
}

}  // namespace

BrokerSession::BrokerSession(const WorkBroker& broker, std::string owner)
    : broker_(broker),
      board_(broker.options().distrib_dir, std::move(owner),
             broker.options().lease_seconds) {}

BrokerSession::~BrokerSession() {
  // A dropped connection is lease death: every held unit goes straight
  // back to the pool, same as a stale local claim being stolen.
  for (const auto& [unit, when] : leases_) {
    (void)when;
    board_.Release(unit);
  }
}

service::Json BrokerSession::Handle(const service::Json& request) {
  const std::string op = request.GetString("op", "");
  if (op == "fetch") return Fetch();
  if (op == "renew") return Renew(request);
  if (op == "publish") return Publish(request);
  if (op == "done") return Finish(request, /*mark_done=*/true);
  if (op == "release") return Finish(request, /*mark_done=*/false);
  return ErrorReply("unknown worker op '" + op + "'");
}

service::Json BrokerSession::Fetch() {
  const std::string& dir = broker_.options().distrib_dir;
  for (const std::string& name : distrib::ListUnits(dir)) {
    if (board_.IsDone(name)) continue;
    if (leases_.count(name) != 0) continue;  // already ours
    if (!board_.TryClaim(name).claimed) continue;

    const std::string path = distrib::UnitsDir(dir) + "/" + name + ".unit";
    std::string bytes;
    {
      std::ifstream in(path, std::ios::binary);
      if (in) {
        bytes.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
      }
      if (!in || bytes.empty()) {
        // Torn or vanished unit file: give it back; the coordinator
        // computes it inline, same as the local worker's skip path.
        board_.Release(name);
        continue;
      }
    }
    leases_[name] = Clock::now();
    service::Json reply;
    reply.Set("op", "unit");
    reply.Set("unit", name);
    reply.Set("data", HexEncode(bytes));
    reply.Set("lease_seconds", broker_.options().lease_seconds);
    return reply;
  }
  service::Json reply;
  reply.Set("op", "idle");
  reply.Set("done", distrib::CampaignDone(dir));
  return reply;
}

service::Json BrokerSession::Renew(const service::Json& request) {
  const std::string unit = request.GetString("unit", "");
  const auto it = leases_.find(unit);
  if (it == leases_.end()) {
    // Swept, stolen, or never fetched here — the worker must abandon it.
    service::Json reply;
    reply.Set("op", "lease-lost");
    reply.Set("unit", unit);
    return reply;
  }
  board_.Heartbeat(unit);
  it->second = Clock::now();
  return OkReply();
}

service::Json BrokerSession::Publish(const service::Json& request) {
  const std::string& cache_dir = broker_.options().cache_dir;
  if (cache_dir.empty()) return ErrorReply("daemon has no cache dir");
  Hash128 key;
  if (!Hash128::FromHex(request.GetString("key", ""), &key)) {
    return ErrorReply("bad entry key");
  }
  const auto bytes = HexDecode(request.GetString("data", ""));
  if (!bytes) return ErrorReply("bad entry encoding");
  if (const std::string why = ValidateEntry(*bytes, key); !why.empty()) {
    return ErrorReply("entry rejected: " + why);
  }

  const std::string path = cache_dir + "/" + key.ToHex() + ".gsr";
  std::error_code ec;
  if (fs::exists(path, ec)) return OkReply();  // idempotent re-publish

  static std::atomic<std::uint64_t> seq{0};
  const std::string tmp =
      path + "." + std::to_string(static_cast<unsigned long>(::getpid())) +
      ".net" + std::to_string(seq.fetch_add(1, std::memory_order_relaxed)) +
      ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return ErrorReply("cannot write entry temp file");
    out.write(bytes->data(), static_cast<std::streamsize>(bytes->size()));
    out.flush();
    if (!out) {
      fs::remove(tmp, ec);
      return ErrorReply("entry temp write failed");
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return ErrorReply("entry install failed");
  }
  return OkReply();
}

service::Json BrokerSession::Finish(const service::Json& request,
                                    bool mark_done) {
  const std::string unit = request.GetString("unit", "");
  if (unit.empty()) return ErrorReply("missing unit");
  if (mark_done) board_.MarkDone(unit);
  board_.Release(unit);
  leases_.erase(unit);
  return OkReply();
}

void BrokerSession::SweepExpired() {
  const auto horizon =
      std::chrono::duration<double>(broker_.options().lease_seconds);
  const auto now = Clock::now();
  for (auto it = leases_.begin(); it != leases_.end();) {
    if (now - it->second > horizon) {
      board_.Release(it->first);
      it = leases_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace gpustl::net
