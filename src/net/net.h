// Off-box transport plumbing shared by the TCP server and clients:
// endpoint parsing, socket setup, hex payload encoding, and the
// exponential-backoff schedule every reconnect loop draws from.
//
// Everything here is deliberately tiny and dependency-free (BSD sockets
// only). The interesting protocol machinery lives next door: frame.h
// (length-framed NDJSON), handshake.h (shared-secret hello), tcp_server.h
// (the daemon side), client.h (retry/resume side).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/rng.h"

namespace gpustl::net {

/// A `host:port` pair. Listening with port 0 binds an ephemeral port.
struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
};

/// Parses `host:port` (numeric IPv4 or a resolvable name). Returns
/// nullopt with a diagnostic in `error` (nullable) on malformed input.
std::optional<Endpoint> ParseEndpoint(std::string_view text,
                                      std::string* error = nullptr);

/// Lowercase hex codec for binary payloads embedded in JSON frames (unit
/// files, store entries). Decode rejects odd lengths and non-hex bytes.
std::string HexEncode(std::string_view bytes);
std::optional<std::string> HexDecode(std::string_view hex);

/// Reconnect/backoff policy: attempt k (0-based) sleeps
/// `min(base_ms << k, max_ms)` scaled by a random factor in
/// [1-jitter, 1], so synchronized clients spread out instead of
/// thundering back in lockstep.
struct RetryPolicy {
  int attempts = 8;       // connect cycles before giving up
  int base_ms = 50;       // first-retry delay
  int max_ms = 2000;      // backoff cap
  double jitter = 0.5;    // fraction of the delay randomized away
};

/// The delay before retry `attempt` (0-based; attempt 0 = the delay after
/// the first failure). Deterministic in (policy, attempt, rng state).
int BackoffDelayMs(const RetryPolicy& policy, int attempt, Rng& rng);

/// Binds and listens on `endpoint` (SO_REUSEADDR). Returns the listen fd,
/// or -1 with a diagnostic; `bound_port` (nullable) receives the actual
/// port — the way an ephemeral `:0` listener learns its address.
int ListenTcp(const Endpoint& endpoint, std::string* error,
              std::uint16_t* bound_port = nullptr);

/// Connects with a bounded wait. Returns the connected fd or -1 with a
/// diagnostic. The fd is left in blocking mode; Conn flips it.
int ConnectTcp(const Endpoint& endpoint, int timeout_ms, std::string* error);

}  // namespace gpustl::net
