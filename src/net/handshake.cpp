#include "net/handshake.h"

#include <unistd.h>

#include <atomic>
#include <chrono>

#include "common/chaos.h"
#include "common/hash.h"

namespace gpustl::net {

namespace {

constexpr std::string_view kAuthDomain = "gpustl-net-auth-v1";

HandshakeResult Fail(std::string error, bool fatal = false) {
  HandshakeResult r;
  r.fatal = fatal;
  r.error = std::move(error);
  return r;
}

}  // namespace

std::string AuthProof(const std::string& nonce_hex,
                      const std::string& secret) {
  Hasher128 h;
  h.AddString(kAuthDomain);
  h.AddString(nonce_hex);
  h.AddString(secret);
  return h.Finish().ToHex();
}

std::string MakeNonce() {
  static std::atomic<std::uint64_t> counter{0};
  Hasher128 h;
  h.AddString("gpustl-net-nonce");
  h.AddU64(static_cast<std::uint64_t>(::getpid()));
  h.AddU64(static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count()));
  h.AddU64(static_cast<std::uint64_t>(
      std::chrono::system_clock::now().time_since_epoch().count()));
  h.AddU64(counter.fetch_add(1, std::memory_order_relaxed));
  return h.Finish().ToHex();
}

HandshakeResult ServerHandshake(Conn& conn, const std::string& secret,
                                int deadline_ms) {
  const std::string nonce = MakeNonce();
  service::Json hello;
  hello.Set("op", "hello");
  hello.Set("proto", static_cast<std::int64_t>(kProtoVersion));
  hello.Set("nonce", nonce);
  IoStatus status = conn.WriteJson(hello, deadline_ms, "hello");
  if (status != IoStatus::kOk) {
    return Fail(std::string("handshake write: ") +
                std::string(IoStatusName(status)));
  }
  if (chaos::Fail(chaos::Site::kHandshakeFail)) {
    conn.Shutdown();
    return Fail("chaos handshake-fail");
  }

  service::Json auth;
  status = conn.ReadJson(&auth, deadline_ms, "auth");
  if (status != IoStatus::kOk) {
    return Fail(std::string("handshake read: ") +
                std::string(IoStatusName(status)));
  }
  const std::string role = auth.GetString("role", "");
  const std::string proof = auth.GetString("proof", "");
  std::string error;
  if (auth.GetString("op", "") != "auth") {
    error = "expected auth frame";
  } else if (role != "client" && role != "worker") {
    error = "unknown role '" + role + "'";
  } else if (!secret.empty() && proof != AuthProof(nonce, secret)) {
    error = "bad-secret";
  }
  if (!error.empty()) {
    service::Json deny;
    deny.Set("op", "hello-fail");
    deny.Set("error", error);
    conn.WriteJson(deny, deadline_ms);
    conn.Shutdown();
    return Fail(error, /*fatal=*/true);
  }

  service::Json okay;
  okay.Set("op", "hello-ok");
  status = conn.WriteJson(okay, deadline_ms);
  if (status != IoStatus::kOk) {
    return Fail(std::string("hello-ok write: ") +
                std::string(IoStatusName(status)));
  }
  HandshakeResult r;
  r.ok = true;
  r.role = role;
  return r;
}

HandshakeResult ClientHandshake(Conn& conn, const std::string& secret,
                                const std::string& role, int deadline_ms) {
  service::Json hello;
  IoStatus status = conn.ReadJson(&hello, deadline_ms, "hello");
  if (status != IoStatus::kOk) {
    return Fail(std::string("handshake read: ") +
                std::string(IoStatusName(status)));
  }
  if (hello.GetString("op", "") != "hello") {
    conn.Shutdown();
    return Fail("expected hello frame", /*fatal=*/true);
  }
  const auto proto = hello.GetInt("proto", 0);
  if (proto != kProtoVersion) {
    conn.Shutdown();
    return Fail("protocol version mismatch (server " +
                    std::to_string(proto) + ", expected " +
                    std::to_string(kProtoVersion) + ")",
                /*fatal=*/true);
  }

  service::Json auth;
  auth.Set("op", "auth");
  auth.Set("role", role);
  auth.Set("proof", AuthProof(hello.GetString("nonce", ""), secret));
  status = conn.WriteJson(auth, deadline_ms, "auth");
  if (status != IoStatus::kOk) {
    return Fail(std::string("auth write: ") +
                std::string(IoStatusName(status)));
  }

  service::Json verdict;
  status = conn.ReadJson(&verdict, deadline_ms, "verdict");
  if (status != IoStatus::kOk) {
    // A server that dropped us here (chaos handshake-fail, restart) is
    // indistinguishable from a network blip: retryable.
    return Fail(std::string("handshake verdict: ") +
                std::string(IoStatusName(status)));
  }
  if (verdict.GetString("op", "") != "hello-ok") {
    const std::string error = verdict.GetString("error", "rejected");
    conn.Shutdown();
    return Fail(error, /*fatal=*/true);
  }
  HandshakeResult r;
  r.ok = true;
  r.role = role;
  return r;
}

}  // namespace gpustl::net
