#include "stl/generators.h"

#include <string>

#include "common/rng.h"
#include "common/strutil.h"
#include "isa/assembler.h"

namespace gpustl::stl {
namespace {

using gpustl::Format;

/// Text-emitting program builder: the generators produce assembly source
/// (labels included) and run it through the assembler, so every generated
/// PTP is also a valid assembler round-trip exercise.
class AsmBuilder {
 public:
  AsmBuilder(const std::string& name, int blocks, int threads) {
    src_ += ".entry " + name + "\n";
    src_ += Format(".blocks %d\n.threads %d\n", blocks, threads);
  }

  void Line(const std::string& text) { src_ += "    " + text + "\n"; }
  void Label(const std::string& name) { src_ += name + ":\n"; }

  void Data(std::uint32_t addr, const std::vector<std::uint32_t>& words) {
    std::string line = Format(".data 0x%x:", addr);
    for (std::uint32_t w : words) line += Format(" 0x%x", w);
    src_ += line + "\n";
  }

  isa::Program Assemble() const { return isa::Assemble(src_); }

  const std::string& source() const { return src_; }

 private:
  std::string src_;
};

/// Shared prologue: R1 = tid, R3 = tid*4, R2 = result base + tid*4.
/// R9 (signature) and R7 (fold target) start at thread-distinct values.
void EmitPrologue(AsmBuilder& b) {
  b.Line("S2R R1, SR_TID");
  b.Line("MOV32I R0, 0x4");
  b.Line("IMUL R3, R1, R0");
  b.Line(Format("IADD32I R2, R3, 0x%x", kResultBase));
  b.Line("MOV32I R9, 0x5a5a5a5a");
  b.Line("XOR R9, R9, R1");
  b.Line("MOV R7, R9");
}

std::uint32_t Rnd32(Rng& rng) { return static_cast<std::uint32_t>(rng()); }

}  // namespace

isa::Program GenerateImm(int num_sbs, std::uint64_t seed) {
  Rng rng(seed);
  AsmBuilder b("imm", 1, 32);
  EmitPrologue(b);

  // Immediate-capable and register-form instruction pools covering every
  // instruction format at least once per few SBs.
  const char* imm_ops[] = {"IADD32I", "IADD", "ISUB", "AND",  "OR",
                           "XOR",     "SHL",  "SHR",  "SAR",  "IMUL",
                           "IMIN",    "IMAX", "FADD", "FMUL", "FMIN"};
  const char* reg_ops[] = {"IADD", "ISUB", "IMUL", "AND", "OR",
                           "XOR",  "SHL",  "IMIN", "IMAX"};
  const char* unary_ops[] = {"IABS", "INEG", "NOT", "MOV", "FABS", "FNEG",
                             "I2F",  "F2I"};
  const char* cmp_names[] = {"LT", "LE", "GT", "GE", "EQ", "NE"};

  // Destination registers rotate through the whole upper file (R10..R63)
  // so the PTP exercises every write-address decode line of the DU.
  int last_dst = 10;
  auto next_dst = [&] {
    last_dst = 10 + static_cast<int>(rng.below(54));
    return last_dst;
  };
  auto some_src = [&] {
    // Mostly the freshly-written registers, sometimes the SB operands.
    return rng.chance(0.4) ? last_dst : 4 + static_cast<int>(rng.below(3));
  };

  for (int sb = 0; sb < num_sbs; ++sb) {
    // (i) thread register load.
    b.Line(Format("MOV32I R4, 0x%x", Rnd32(rng)));
    b.Line(Format("MOV32I R5, 0x%x", Rnd32(rng)));
    b.Line("XOR R4, R4, R1");
    // (ii) parallel operation execution: ~10 pseudorandom operations biased
    // toward immediate forms (the IMM PTP exercises every format with at
    // least one immediate operand).
    for (int k = 0; k < 10; ++k) {
      const int kind = static_cast<int>(rng.below(10));
      if (kind < 5) {
        const char* op = imm_ops[rng.below(std::size(imm_ops))];
        b.Line(Format("%s R%d, R%d, 0x%x", op, next_dst(), some_src(),
                      Rnd32(rng)));
      } else if (kind < 7) {
        const char* op = reg_ops[rng.below(std::size(reg_ops))];
        b.Line(Format("%s R%d, R%d, R%d", op, next_dst(), some_src(),
                      some_src()));
      } else if (kind < 8) {
        const char* op = unary_ops[rng.below(std::size(unary_ops))];
        b.Line(Format("%s R%d, R%d", op, next_dst(), some_src()));
      } else if (kind < 9) {
        b.Line(Format("ISETP.%s P%d, R%d, 0x%x",
                      cmp_names[rng.below(std::size(cmp_names))],
                      static_cast<int>(rng.below(4)), some_src(),
                      Rnd32(rng)));
      } else {
        const int tri = static_cast<int>(rng.below(3));
        const char* op = tri == 0 ? "IMAD" : tri == 1 ? "SEL" : "FFMA";
        b.Line(Format("%s R%d, R4, R5, R%d", op, next_dst(), some_src()));
      }
      if (k % 3 == 2) b.Line(Format("XOR R7, R7, R%d", last_dst));
    }
    // (iii) propagation to an observable point.
    b.Line(Format("STG [R2+0x%x], R7", sb * 32 * 4));
  }
  b.Line("EXIT");
  return b.Assemble();
}

isa::Program GenerateMem(int num_sbs, std::uint64_t seed) {
  Rng rng(seed);
  AsmBuilder b("mem", 1, 32);
  constexpr int kTpb = 32;
  EmitPrologue(b);

  for (int sb = 0; sb < num_sbs; ++sb) {
    const std::uint32_t seg_addr =
        kDataBase + static_cast<std::uint32_t>(sb) * kTpb * 4;
    std::vector<std::uint32_t> words(kTpb);
    for (auto& w : words) w = Rnd32(rng);
    b.Data(seg_addr, words);

    // Loads land in rotating destination registers so the PTP also covers
    // the DU's write-address decode space.
    const int d1 = 10 + static_cast<int>(rng.below(54));
    const int d2 = 10 + static_cast<int>(rng.below(54));
    const int d3 = 10 + static_cast<int>(rng.below(54));
    const int d4 = 10 + static_cast<int>(rng.below(54));
    // (i) per-thread address formation.
    b.Line(Format("MOV32I R10, 0x%x", seg_addr));
    b.Line("IADD R10, R10, R3");
    // (ii) memory-access sequence over global, shared and constant spaces.
    b.Line(Format("LDG R%d, [R10+0x0]", d1));
    b.Line(Format("STS [R3+0x0], R%d", d1));
    b.Line(Format("LDS R%d, [R3+0x0]", d2));
    b.Line(Format("LDC R%d, [R3+0x%x]", d3,
                  static_cast<unsigned>(rng.below(16)) * 4));
    b.Line(Format("XOR R7, R7, R%d", d1));
    b.Line(Format("XOR R7, R7, R%d", d2));
    b.Line(Format("IADD R7, R7, R%d", d3));
    b.Line(Format("IADD32I R10, R10, 0x%x",
                  static_cast<unsigned>(rng.below(8)) * 4));
    b.Line("STL [R0+0x0], R7");
    b.Line(Format("LDL R%d, [R0+0x0]", d4));
    b.Line(Format("XOR R7, R7, R%d", d4));
    // (iii) propagation.
    b.Line(Format("STG [R2+0x%x], R7", sb * kTpb * 4));
  }
  b.Line("EXIT");
  return b.Assemble();
}

isa::Program GenerateCntrl(int num_sbs, std::uint64_t seed) {
  Rng rng(seed);
  constexpr int kTpb = 1024;
  AsmBuilder b("cntrl", 1, kTpb);

  // Runtime loop bound lives in memory: the loop that consumes it is a
  // *parametric* loop and must be excluded from the ARC.
  const std::uint32_t bound_addr = kDataBase + 0x8000;
  b.Data(bound_addr, {6});

  EmitPrologue(b);

  for (int sb = 0; sb < num_sbs; ++sb) {
    const std::string taken = Format("taken_%d", sb);
    const std::string sync = Format("sync_%d", sb);
    // (i) condition setup from immediate/register/memory values.
    b.Line(Format("MOV32I R4, 0x%x", Rnd32(rng)));
    b.Line(Format("MOV32I R5, 0x%x", static_cast<unsigned>(rng.below(kTpb))));
    b.Line(Format("ISETP.%s P0, R1, R5", rng.chance(0.5) ? "LT" : "GE"));
    b.Line(Format("ISETP.EQ P1, R1, 0x%x", static_cast<unsigned>(rng.below(kTpb))));
    // (ii) divergent control flow guarded by the conditions.
    b.Line(Format("SSY %s", sync.c_str()));
    b.Line(Format("@P0 BRA %s", taken.c_str()));
    b.Line(Format("IADD32I R6, R4, 0x%x", Rnd32(rng) & 0xFFFF));
    b.Line("XOR R7, R7, R6");
    b.Line("SYNC");
    b.Label(taken);
    b.Line(Format("ISUB R6, R4, R%d", 4 + static_cast<int>(rng.below(3))));
    b.Line("@!P1 XOR R7, R7, R6");
    b.Line("SYNC");
    b.Label(sync);
    // (iii) propagation.
    b.Line(Format("STG [R2+0x%x], R7", sb * kTpb * 4));
  }

  // Inadmissible region: parametric loop, trip count loaded from memory.
  b.Line(Format("MOV32I R13, 0x%x", bound_addr));
  b.Line("LDG R12, [R13+0x0]");
  b.Line("MOV32I R11, 0x0");
  b.Label("loop");
  b.Line("IADD32I R11, R11, 0x1");
  b.Line("IADD R7, R7, R4");
  b.Line("XOR R7, R7, R11");
  b.Line("ISETP.LT P2, R11, R12");
  b.Line("@P2 BRA loop");
  b.Line(Format("STG [R2+0x%x], R7", num_sbs * kTpb * 4));
  b.Line("EXIT");
  return b.Assemble();
}

isa::Program GenerateRand(int num_sbs, std::uint64_t seed) {
  Rng rng(seed);
  AsmBuilder b("rand", 1, 32);
  EmitPrologue(b);

  const char* rrr_ops[] = {"IADD", "ISUB", "IMUL", "IMIN", "IMAX",
                           "AND",  "OR",   "XOR",  "SHL",  "SHR",
                           "SAR"};
  const char* unary_ops[] = {"IABS", "INEG", "NOT"};

  for (int sb = 0; sb < num_sbs; ++sb) {
    // (i) thread register loads, mixed with the thread id so every SP lane
    // receives distinct patterns.
    b.Line(Format("MOV32I R4, 0x%x", Rnd32(rng)));
    b.Line(Format("MOV32I R5, 0x%x", Rnd32(rng)));
    b.Line(Format("MOV32I R6, 0x%x", Rnd32(rng)));
    b.Line("IADD R4, R4, R1");
    b.Line("XOR R5, R5, R3");
    // (ii) pseudorandom SP operations; each result is folded into the
    // per-thread signature (SpT) with a MISR-like step.
    for (int k = 0; k < 8; ++k) {
      const int kind = static_cast<int>(rng.below(8));
      if (kind < 5) {
        b.Line(Format("%s R8, R%d, R%d", rrr_ops[rng.below(std::size(rrr_ops))],
                      4 + static_cast<int>(rng.below(3)),
                      4 + static_cast<int>(rng.below(3))));
      } else if (kind < 6) {
        b.Line(Format("%s R8, R%d", unary_ops[rng.below(std::size(unary_ops))],
                      4 + static_cast<int>(rng.below(3))));
      } else if (kind < 7) {
        b.Line(Format("IMAD R8, R%d, R%d, R9",
                      4 + static_cast<int>(rng.below(3)),
                      4 + static_cast<int>(rng.below(3))));
      } else {
        b.Line(Format("SEL R8, R4, R5, R%d", 4 + static_cast<int>(rng.below(3))));
      }
      b.Line("XOR R9, R9, R8");
    }
    // MISR rotate step.
    b.Line("SHL R7, R9, 0x1");
    b.Line("SHR R8, R9, 0x1f");
    b.Line("OR R9, R7, R8");
    // (iii) propagate the signature.
    b.Line(Format("STG [R2+0x%x], R9", sb * 32 * 4));
  }
  b.Line("EXIT");
  return b.Assemble();
}

isa::Program GenerateFpu(int num_sbs, std::uint64_t seed) {
  Rng rng(seed);
  AsmBuilder b("fpu", 1, 32);
  EmitPrologue(b);

  // Half the operands carry "reasonable" exponents so the add path's
  // alignment and normalization logic is exercised, not just flushes.
  auto fp_operand = [&]() -> std::uint32_t {
    std::uint32_t bits = Rnd32(rng);
    if (rng.chance(0.5)) {
      bits = (bits & 0x807FFFFFu) |
             ((100 + static_cast<std::uint32_t>(rng.below(56))) << 23);
    }
    return bits;
  };

  for (int sb = 0; sb < num_sbs; ++sb) {
    // (i) operand loads (plus tid mixed in through I2F for per-lane
    // diversity).
    b.Line(Format("MOV32I R4, 0x%x", fp_operand()));
    b.Line(Format("MOV32I R5, 0x%x", fp_operand()));
    b.Line("I2F R6, R1");
    b.Line("FADD R4, R4, R6");
    // (ii) pseudorandom FP-lite operations.
    for (int k = 0; k < 8; ++k) {
      switch (rng.below(4)) {
        case 0:
          b.Line(Format("FADD R8, R%d, R%d", 4 + static_cast<int>(rng.below(3)),
                        4 + static_cast<int>(rng.below(3))));
          break;
        case 1:
          b.Line(Format("FMUL R8, R%d, R%d", 4 + static_cast<int>(rng.below(3)),
                        4 + static_cast<int>(rng.below(3))));
          break;
        case 2:
          b.Line(Format("FABS R8, R%d", 4 + static_cast<int>(rng.below(3))));
          break;
        default:
          b.Line(Format("FNEG R8, R%d", 4 + static_cast<int>(rng.below(3))));
          break;
      }
      b.Line("XOR R9, R9, R8");
    }
    // (iii) propagate the fold.
    b.Line(Format("STG [R2+0x%x], R9", sb * 32 * 4));
  }
  b.Line("EXIT");
  return b.Assemble();
}

}  // namespace gpustl::stl
