#include "stl/atpg_convert.h"

#include "common/error.h"
#include "common/strutil.h"
#include "isa/assembler.h"
#include "stl/generators.h"

namespace gpustl::stl {
namespace {

using gpustl::Format;
using isa::Opcode;

/// Extracts bits [lo, lo+width) from a packed pattern row.
std::uint32_t Field(const std::uint64_t* row, int lo, int width) {
  std::uint64_t v = row[lo / 64] >> (lo % 64);
  const int used = 64 - lo % 64;
  if (width > used) v |= row[lo / 64 + 1] << used;
  return static_cast<std::uint32_t>(v & (width >= 32 ? ~0u : ((1u << width) - 1)));
}

/// True when `uop` names an instruction the parser can realize with
/// immediate-loaded operands on the SP integer datapath.
bool ConvertibleSpOp(std::uint32_t uop) {
  switch (static_cast<Opcode>(uop)) {
    case Opcode::IADD: case Opcode::ISUB: case Opcode::IMUL:
    case Opcode::IMAD: case Opcode::IMIN: case Opcode::IMAX:
    case Opcode::IABS: case Opcode::INEG:
    case Opcode::AND: case Opcode::OR: case Opcode::XOR: case Opcode::NOT:
    case Opcode::SHL: case Opcode::SHR: case Opcode::SAR:
    case Opcode::ISETP: case Opcode::SEL: case Opcode::MOV:
      return true;
    default:
      return false;
  }
}

}  // namespace

isa::Program ConvertSpPatterns(const netlist::PatternSet& patterns,
                               ConvertStats* stats) {
  GPUSTL_ASSERT(patterns.width() == 105, "not an SP pattern set");
  ConvertStats local;
  local.patterns_in = patterns.size();

  std::string src;
  src += ".entry tpgen\n.blocks 1\n.threads 32\n";
  auto line = [&](const std::string& text) { src += "    " + text + "\n"; };

  // Minimal prologue: result pointer only. Operands are immediate-loaded
  // per pattern, so every lane applies the exact ATPG vector.
  line("S2R R1, SR_TID");
  line("MOV32I R0, 0x4");
  line("IMUL R3, R1, R0");
  line(Format("IADD32I R2, R3, 0x%x", kResultBase));
  line("MOV32I R9, 0x0");

  static const char* kCmpNames[] = {"LT", "LE", "GT", "GE", "EQ", "NE"};

  int sb = 0;
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    const std::uint64_t* row = patterns.Row(p);
    const std::uint32_t uop = Field(row, 0, 6);
    const std::uint32_t cmp = Field(row, 6, 3);
    const std::uint32_t a = Field(row, 9, 32);
    const std::uint32_t b = Field(row, 41, 32);
    const std::uint32_t c = Field(row, 73, 32);

    if (!ConvertibleSpOp(uop) || cmp > 5) {
      ++local.skipped;
      continue;
    }
    ++local.converted;
    const auto op = static_cast<Opcode>(uop);
    const auto& info = isa::GetOpcodeInfo(op);
    const std::string mnemonic(info.mnemonic);

    // (i) operand loads. R0 doubles as the implicit src of unary/2-src ops
    // (encoded register 0), so load it with the pattern's B operand.
    line(Format("MOV32I R4, 0x%x", a));
    line(Format("MOV32I R5, 0x%x", b));
    line(Format("MOV32I R6, 0x%x", c));
    line(Format("MOV32I R0, 0x%x", b));

    // (ii) the pattern's operation.
    switch (info.format) {
      case isa::Format::kRR:
        line(Format("%s R8, R4", mnemonic.c_str()));
        break;
      case isa::Format::kSetp:
        line(Format("ISETP.%s P0, R4, R5", kCmpNames[cmp]));
        line("MOV32I R8, 0x0");
        line("@P0 MOV32I R8, 0x1");
        break;
      case isa::Format::kRRR:
        if (op == Opcode::IMAD || op == Opcode::SEL) {
          line(Format("%s R8, R4, R5, R6", mnemonic.c_str()));
        } else {
          line(Format("%s R8, R4, R5", mnemonic.c_str()));
        }
        break;
      default:
        line(Format("%s R8, R4, R5", mnemonic.c_str()));
        break;
    }

    // (iii) fold + propagate.
    line("XOR R9, R9, R8");
    line(Format("STG [R2+0x%x], R9", sb * 32 * 4));
    ++sb;
  }
  line("EXIT");

  if (stats != nullptr) *stats = local;
  isa::Program prog = isa::Assemble(src);
  return prog;
}

isa::Program ConvertSfuPatterns(const netlist::PatternSet& patterns,
                                ConvertStats* stats) {
  GPUSTL_ASSERT(patterns.width() == 35, "not an SFU pattern set");
  ConvertStats local;
  local.patterns_in = patterns.size();

  std::string src;
  src += ".entry sfu_imm\n.blocks 1\n.threads 32\n";
  auto line = [&](const std::string& text) { src += "    " + text + "\n"; };

  line("S2R R1, SR_TID");
  line("MOV32I R0, 0x4");
  line("IMUL R3, R1, R0");
  line(Format("IADD32I R2, R3, 0x%x", kResultBase));

  static const char* kSfuNames[] = {"RCP", "RSQ", "SIN", "COS", "LG2", "EX2"};

  int sb = 0;
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    const std::uint64_t* row = patterns.Row(p);
    const std::uint32_t fsel = Field(row, 0, 3);
    const std::uint32_t x = Field(row, 3, 32);
    if (fsel > 5) {
      ++local.skipped;
      continue;
    }
    ++local.converted;
    // SFU interpolation is stateless: each SB is independent (no data
    // dependence between SBs, hence compaction cannot change the FC of
    // surviving SBs — the paper's SFU_IMM observation).
    line(Format("MOV32I R4, 0x%x", x));
    line(Format("%s R8, R4", kSfuNames[fsel]));
    line(Format("STG [R2+0x%x], R8", sb * 32 * 4));
    ++sb;
  }
  line("EXIT");

  if (stats != nullptr) *stats = local;
  return isa::Assemble(src);
}

}  // namespace gpustl::stl
