// Pseudorandom PTP generators: the STL under test.
//
// The evaluated STL (paper §IV) contains PTPs produced "by a specialized
// test engineer resorting to a pseudorandom approach using all instruction
// formats of the supported assembly language". These generators reproduce
// that structure programmatically:
//
//  * IMM   — Decoder Unit PTP: every instruction format with at least one
//            immediate operand, plus register-based instructions;
//            1 block x 32 threads.
//  * MEM   — Decoder Unit PTP: memory-access instructions over global and
//            shared memory (plus constant loads); 1 block x 32 threads.
//  * CNTRL — Decoder Unit PTP: immediate/memory/register instructions that
//            set up conditions consumed by control-flow instructions
//            (divergent branches with SSY/SYNC) and a runtime-parametric
//            loop region that is NOT admissible for compaction;
//            1 block x 1024 threads.
//  * RAND  — SP-core PTP: pseudorandom integer/logic operations whose
//            results are folded into a per-thread MISR-style signature
//            (SpT) that is written to global memory; 1 block x 32 threads.
//
// Every PTP follows the three-part structure of §II.C: (i) thread register
// loads, (ii) parallel operation execution, (iii) propagation of the result
// to an observable point. The generators emit that structure as Small
// Blocks (SBs) of roughly 15-18 instructions, which is the granularity the
// reduction stage removes.
#pragma once

#include <cstdint>

#include "isa/program.h"

namespace gpustl::stl {

/// Base address of the observable result window in global memory.
inline constexpr std::uint32_t kResultBase = 0x0001'0000;

/// Base address of PTP input data in global memory.
inline constexpr std::uint32_t kDataBase = 0x0010'0000;

isa::Program GenerateImm(int num_sbs, std::uint64_t seed);
isa::Program GenerateMem(int num_sbs, std::uint64_t seed);
isa::Program GenerateCntrl(int num_sbs, std::uint64_t seed);
isa::Program GenerateRand(int num_sbs, std::uint64_t seed);

/// FPU-targeted PTP (extension beyond the paper's six PTPs): pseudorandom
/// FADD/FMUL/FABS/FNEG sequences over mixed random/normalized operands,
/// results folded into the signature; 1 block x 32 threads. Drives the
/// gate-level FP32 FP-lite datapath (trace::TargetModule::kFp32).
isa::Program GenerateFpu(int num_sbs, std::uint64_t seed);

}  // namespace gpustl::stl
