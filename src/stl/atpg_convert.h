// ATPG-pattern-to-instruction conversion: the paper's "parser tool".
//
// TPGEN (SP cores) and SFU_IMM (SFUs) are built by converting ATPG test
// patterns into GPU instructions. A pattern is converted only when a fully
// equivalent instruction exists ("the test patterns are converted partially
// due to a lack of fully equivalent instructions"): SP patterns whose
// micro-op field does not name an executable SP instruction, and SFU
// patterns whose function selector exceeds the six transcendental opcodes,
// are skipped and counted.
#pragma once

#include <cstdint>

#include "isa/program.h"
#include "netlist/patterns.h"

namespace gpustl::stl {

struct ConvertStats {
  std::size_t patterns_in = 0;
  std::size_t converted = 0;
  std::size_t skipped = 0;
};

/// Converts SP-core ATPG patterns (layout of circuits::EncodeSpPattern)
/// into the TPGEN PTP: one small block per pattern that loads the operand
/// registers, executes the pattern's operation, folds the result into the
/// signature and propagates it. 1 block x 32 threads.
isa::Program ConvertSpPatterns(const netlist::PatternSet& patterns,
                               ConvertStats* stats = nullptr);

/// Converts SFU ATPG patterns (layout of circuits::EncodeSfuPattern) into
/// the SFU_IMM PTP. 1 block x 32 threads.
isa::Program ConvertSfuPatterns(const netlist::PatternSet& patterns,
                                ConvertStats* stats = nullptr);

}  // namespace gpustl::stl
