// Campaign checkpointing: resumable whole-STL compaction runs.
//
// `gpustlc campaign --resume <dir>` writes, after every processed PTP, a
// checkpoint file carrying one entry per campaign record — enough to
// rebuild the CampaignRecord sizes/durations (and hence a bit-identical
// CampaignSummary) without recomputing — plus the per-module persistent
// fault-list state (`state.<MODULE>.flist`, the fault/faultlist_io
// format). On restart the manifest is fingerprinted entry by entry; when
// the checkpointed entries form an exact prefix of the manifest, the
// prefix is restored and processing continues at the first unprocessed
// entry. Any mismatch (edited PTP, reordered manifest, changed flags)
// discards the checkpoint and starts fresh — combined with the result
// store, the fresh run still skips every fault simulation whose inputs
// did not change, which is what makes one-PTP edits cheap (incremental
// recompaction).
//
// Checkpoint directory layout (docs/FORMATS.md):
//   <dir>/campaign.ckpt       the record file below
//   <dir>/state.DU.flist      fault-list state per module (faultlist_io)
//   <dir>/state.SP.flist      ...
//
// campaign.ckpt, line-oriented text:
//   $campaign v2 entries <N>
//   <fp> <target> <c> <osize> <odur> <fsize> <fdur> <secbits> <fcbits>
//     <deg> <class> <stage> <name>              (one line per record)
//   $end
// where <fp> is the 32-hex-char manifest-entry fingerprint, <c> is 0/1
// (carried/compacted) and <secbits>/<fcbits> are the IEEE-754 bit
// patterns of the record's compaction seconds and diff-FC in hex —
// doubles round-trip bit-exactly, which is what makes a resumed
// campaign's report byte-identical to the uninterrupted one. <deg> is 0/1
// (degraded record) and <class>/<stage> are the error-class token
// (common/status.h) and failed stage name, '-' for healthy records —
// degraded runs stay resumable, and a resumed degraded record renders
// exactly as the interrupted run reported it. v1 files (no degradation
// fields) are treated as damaged and ignored: a fresh start, never a
// misread.
//
// All checkpoint/state writes go through AtomicWriteFile, which retries
// transient failures with capped backoff (store/io_retry.h) before
// throwing gpustl::IoError.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/hash.h"

namespace gpustl::store {

/// One checkpointed campaign record.
struct CheckpointEntry {
  Hash128 entry_fp;    // FingerprintStlEntry of the manifest entry
  std::string name;    // record/PTP name (may be empty)
  std::string target;  // module token: DU, SP, SFU, FP32
  bool compacted = false;
  std::uint64_t original_size = 0;
  std::uint64_t original_duration = 0;
  std::uint64_t final_size = 0;
  std::uint64_t final_duration = 0;
  double compaction_seconds = 0.0;
  double diff_fc = 0.0;  // FC difference of a compacted record, % points
  bool degraded = false;
  std::string error_class;  // ErrorClassName token, empty when healthy
  std::string error_stage;  // failed stage name, empty when healthy

  bool operator==(const CheckpointEntry&) const = default;
};

struct CampaignCheckpoint {
  std::vector<CheckpointEntry> entries;
};

/// Content fingerprint of one manifest entry: the PTP's serialized bytes
/// (GPTP container or raw assembly — whatever the campaign loads), the
/// target module token and the processing flags. Identifies "the same
/// work" across invocations; any edit to the PTP or its flags changes it.
Hash128 FingerprintStlEntry(std::string_view ptp_bytes,
                            std::string_view target, bool compactable,
                            bool reverse_patterns);

/// Path of the record file inside a checkpoint directory.
std::string CheckpointPath(const std::string& dir);

/// Serializes and atomically replaces `<dir>/campaign.ckpt` (the directory
/// is created if needed). Throws gpustl::Error on I/O failure.
void WriteCheckpoint(const std::string& dir, const CampaignCheckpoint& ckpt);

/// Loads `<dir>/campaign.ckpt`. Returns nullopt when the file is absent OR
/// malformed/truncated — a damaged checkpoint is logged and ignored (the
/// campaign restarts from scratch), never fatal.
std::optional<CampaignCheckpoint> ReadCheckpoint(const std::string& dir);

/// Atomic file replacement used for checkpoint state (temp file + rename).
/// Transient failures retry with capped backoff; throws gpustl::IoError
/// once the policy is exhausted.
void AtomicWriteFile(const std::string& path, std::string_view content);

/// Process-wide checkpoint I/O counters (observability for tests and the
/// degraded-run report): write attempts that were retried, and writes
/// abandoned after the whole retry budget.
struct CheckpointIoCounters {
  std::uint64_t retries = 0;
  std::uint64_t failures = 0;
};
CheckpointIoCounters GetCheckpointIoCounters();

}  // namespace gpustl::store
