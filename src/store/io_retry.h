// Retry-with-capped-backoff for store and checkpoint filesystem I/O.
//
// Cache and checkpoint writes fail for transient reasons (ENOSPC races,
// overlay filesystems, antivirus scans holding the temp file) far more
// often than for permanent ones; before this policy each failure was a
// one-shot "caching skipped" or a fatal Error. Every store/checkpoint
// write now retries a bounded number of times with a short capped
// exponential backoff, and the retries/failures are counted so campaigns
// report flaky storage instead of hiding it.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

namespace gpustl::store {

struct RetryPolicy {
  int max_attempts = 3;
  double initial_backoff_ms = 0.5;
  double backoff_multiplier = 4.0;
  double max_backoff_ms = 8.0;
};

/// Runs `attempt` (true = success) up to policy.max_attempts times,
/// sleeping the capped exponential backoff between failures. Returns
/// whether any attempt succeeded; `retries`, when non-null, accumulates
/// the number of re-attempts actually made.
template <typename Fn>
bool RetryIo(const RetryPolicy& policy, Fn&& attempt,
             std::uint64_t* retries = nullptr) {
  double backoff_ms = policy.initial_backoff_ms;
  for (int a = 1;; ++a) {
    if (attempt()) return true;
    if (a >= policy.max_attempts) return false;
    if (retries != nullptr) ++*retries;
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(backoff_ms));
    backoff_ms = std::min(backoff_ms * policy.backoff_multiplier,
                          policy.max_backoff_ms);
  }
}

}  // namespace gpustl::store
