#include "store/checkpoint.h"

#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "common/error.h"
#include "common/strutil.h"

namespace gpustl::store {
namespace fs = std::filesystem;

namespace {

std::string HexU64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::optional<std::uint64_t> ParseHexU64(std::string_view s) {
  if (s.empty() || s.size() > 16) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : s) {
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else return std::nullopt;
    v = (v << 4) | static_cast<std::uint64_t>(d);
  }
  return v;
}

std::optional<std::uint64_t> ParseU64(std::string_view s) {
  const auto v = ParseInt(s);
  if (!v || *v < 0) return std::nullopt;
  return static_cast<std::uint64_t>(*v);
}

}  // namespace

Hash128 FingerprintStlEntry(std::string_view ptp_bytes,
                            std::string_view target, bool compactable,
                            bool reverse_patterns) {
  Hasher128 h;
  h.AddString("gpustl-stlentry-v1");
  h.AddString(ptp_bytes);
  h.AddString(target);
  h.AddBool(compactable);
  h.AddBool(reverse_patterns);
  return h.Finish();
}

std::string CheckpointPath(const std::string& dir) {
  return (fs::path(dir) / "campaign.ckpt").string();
}

void AtomicWriteFile(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw Error("store: cannot write " + tmp);
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    if (!out) {
      std::error_code ec;
      fs::remove(tmp, ec);
      throw Error("store: short write to " + tmp);
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw Error("store: cannot replace " + path + ": " + ec.message());
  }
}

void WriteCheckpoint(const std::string& dir, const CampaignCheckpoint& ckpt) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    throw Error("store: cannot create checkpoint directory '" + dir +
                "': " + ec.message());
  }
  std::ostringstream out;
  out << "$campaign v1 entries " << ckpt.entries.size() << "\n";
  for (const CheckpointEntry& e : ckpt.entries) {
    out << e.entry_fp.ToHex() << " " << e.target << " "
        << (e.compacted ? 1 : 0) << " " << e.original_size << " "
        << e.original_duration << " " << e.final_size << " "
        << e.final_duration << " "
        << HexU64(std::bit_cast<std::uint64_t>(e.compaction_seconds)) << " "
        << HexU64(std::bit_cast<std::uint64_t>(e.diff_fc)) << " " << e.name
        << "\n";
  }
  out << "$end\n";
  AtomicWriteFile(CheckpointPath(dir), out.str());
}

std::optional<CampaignCheckpoint> ReadCheckpoint(const std::string& dir) {
  const std::string path = CheckpointPath(dir);
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;  // no checkpoint yet: normal first run

  auto damaged = [&](const char* why) -> std::optional<CampaignCheckpoint> {
    std::fprintf(stderr,
                 "gpustl-store: ignoring damaged checkpoint %s (%s)\n",
                 path.c_str(), why);
    return std::nullopt;
  };

  std::string line;
  if (!std::getline(in, line)) return damaged("empty file");
  const auto head = SplitWs(line);
  if (head.size() != 4 || head[0] != "$campaign" || head[1] != "v1" ||
      head[2] != "entries") {
    return damaged("bad header");
  }
  const auto count = ParseU64(head[3]);
  if (!count) return damaged("bad entry count");

  CampaignCheckpoint ckpt;
  ckpt.entries.reserve(*count);
  for (std::uint64_t i = 0; i < *count; ++i) {
    if (!std::getline(in, line)) return damaged("truncated");
    const std::string_view trimmed = Trim(line);
    const auto toks = SplitWs(trimmed);
    // The name is the line's tail and may be empty; 9 leading fields.
    if (toks.size() < 9) return damaged("short record line");
    CheckpointEntry e;
    if (!Hash128::FromHex(toks[0], &e.entry_fp)) return damaged("bad fp");
    e.target = std::string(toks[1]);
    const auto compacted = ParseU64(toks[2]);
    const auto osize = ParseU64(toks[3]);
    const auto odur = ParseU64(toks[4]);
    const auto fsize = ParseU64(toks[5]);
    const auto fdur = ParseU64(toks[6]);
    const auto secbits = ParseHexU64(toks[7]);
    const auto fcbits = ParseHexU64(toks[8]);
    if (!compacted || *compacted > 1 || !osize || !odur || !fsize || !fdur ||
        !secbits || !fcbits) {
      return damaged("bad record field");
    }
    e.compacted = *compacted == 1;
    e.original_size = *osize;
    e.original_duration = *odur;
    e.final_size = *fsize;
    e.final_duration = *fdur;
    e.compaction_seconds = std::bit_cast<double>(*secbits);
    e.diff_fc = std::bit_cast<double>(*fcbits);
    if (toks.size() > 9) {
      e.name = std::string(trimmed.substr(toks[9].data() - trimmed.data()));
    }
    ckpt.entries.push_back(std::move(e));
  }
  if (!std::getline(in, line) || Trim(line) != "$end") {
    return damaged("missing $end");
  }
  return ckpt;
}

}  // namespace gpustl::store
