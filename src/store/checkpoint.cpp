#include "store/checkpoint.h"

#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include <atomic>

#include "common/chaos.h"
#include "common/error.h"
#include "common/status.h"
#include "common/strutil.h"
#include "store/io_retry.h"

namespace gpustl::store {
namespace fs = std::filesystem;

namespace {

/// Sane ceiling on the checkpointed record count: well beyond any real
/// STL, small enough that a corrupt header can never trigger a huge
/// reserve before the per-line validation notices the damage.
constexpr std::uint64_t kMaxCheckpointEntries = 1u << 20;

std::atomic<std::uint64_t> g_ckpt_retries{0};
std::atomic<std::uint64_t> g_ckpt_failures{0};

std::string HexU64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::optional<std::uint64_t> ParseHexU64(std::string_view s) {
  if (s.empty() || s.size() > 16) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : s) {
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else return std::nullopt;
    v = (v << 4) | static_cast<std::uint64_t>(d);
  }
  return v;
}

std::optional<std::uint64_t> ParseU64(std::string_view s) {
  const auto v = ParseInt(s);
  if (!v || *v < 0) return std::nullopt;
  return static_cast<std::uint64_t>(*v);
}

}  // namespace

Hash128 FingerprintStlEntry(std::string_view ptp_bytes,
                            std::string_view target, bool compactable,
                            bool reverse_patterns) {
  Hasher128 h;
  h.AddString("gpustl-stlentry-v1");
  h.AddString(ptp_bytes);
  h.AddString(target);
  h.AddBool(compactable);
  h.AddBool(reverse_patterns);
  return h.Finish();
}

std::string CheckpointPath(const std::string& dir) {
  return (fs::path(dir) / "campaign.ckpt").string();
}

void AtomicWriteFile(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  std::string why;
  const auto attempt = [&]() -> bool {
    if (chaos::Fail(chaos::Site::kCheckpointWriteFail)) {
      why = "chaos: injected checkpoint write failure";
      return false;
    }
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) {
        why = "cannot write " + tmp;
        return false;
      }
      out.write(content.data(), static_cast<std::streamsize>(content.size()));
      if (!out) {
        std::error_code ec;
        fs::remove(tmp, ec);
        why = "short write to " + tmp;
        return false;
      }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
      fs::remove(tmp, ec);
      why = "cannot replace " + path + ": " + ec.message();
      return false;
    }
    return true;
  };
  std::uint64_t retries = 0;
  const bool ok = RetryIo(RetryPolicy{}, attempt, &retries);
  g_ckpt_retries.fetch_add(retries, std::memory_order_relaxed);
  if (!ok) {
    g_ckpt_failures.fetch_add(1, std::memory_order_relaxed);
    throw IoError("store: " + why);
  }
}

CheckpointIoCounters GetCheckpointIoCounters() {
  return CheckpointIoCounters{
      g_ckpt_retries.load(std::memory_order_relaxed),
      g_ckpt_failures.load(std::memory_order_relaxed)};
}

void WriteCheckpoint(const std::string& dir, const CampaignCheckpoint& ckpt) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    throw Error("store: cannot create checkpoint directory '" + dir +
                "': " + ec.message());
  }
  std::ostringstream out;
  out << "$campaign v2 entries " << ckpt.entries.size() << "\n";
  for (const CheckpointEntry& e : ckpt.entries) {
    out << e.entry_fp.ToHex() << " " << e.target << " "
        << (e.compacted ? 1 : 0) << " " << e.original_size << " "
        << e.original_duration << " " << e.final_size << " "
        << e.final_duration << " "
        << HexU64(std::bit_cast<std::uint64_t>(e.compaction_seconds)) << " "
        << HexU64(std::bit_cast<std::uint64_t>(e.diff_fc)) << " "
        << (e.degraded ? 1 : 0) << " "
        << (e.error_class.empty() ? "-" : e.error_class) << " "
        << (e.error_stage.empty() ? "-" : e.error_stage) << " " << e.name
        << "\n";
  }
  out << "$end\n";
  std::string content = out.str();
  // Chaos: a crash mid-replace. The atomic temp+rename makes a real torn
  // file impossible, so the injected damage is a truncated (but renamed)
  // checkpoint — ReadCheckpoint must classify it as damaged, never crash.
  if (chaos::Fail(chaos::Site::kCheckpointTruncate)) {
    content.resize(content.size() / 2);
  }
  AtomicWriteFile(CheckpointPath(dir), content);
}

std::optional<CampaignCheckpoint> ReadCheckpoint(const std::string& dir) {
  const std::string path = CheckpointPath(dir);
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;  // no checkpoint yet: normal first run

  auto damaged = [&](const char* why) -> std::optional<CampaignCheckpoint> {
    std::fprintf(stderr,
                 "gpustl-store: ignoring damaged checkpoint %s (%s)\n",
                 path.c_str(), why);
    return std::nullopt;
  };

  std::string line;
  if (!std::getline(in, line)) return damaged("empty file");
  const auto head = SplitWs(line);
  if (head.size() != 4 || head[0] != "$campaign" || head[1] != "v2" ||
      head[2] != "entries") {
    return damaged("bad header");
  }
  const auto count = ParseU64(head[3]);
  if (!count) return damaged("bad entry count");
  if (*count > kMaxCheckpointEntries) {
    return damaged("entry count exceeds sane limit");
  }

  CampaignCheckpoint ckpt;
  ckpt.entries.reserve(*count);
  for (std::uint64_t i = 0; i < *count; ++i) {
    if (!std::getline(in, line)) return damaged("truncated");
    const std::string_view trimmed = Trim(line);
    const auto toks = SplitWs(trimmed);
    // The name is the line's tail and may be empty; 12 leading fields.
    if (toks.size() < 12) return damaged("short record line");
    CheckpointEntry e;
    if (!Hash128::FromHex(toks[0], &e.entry_fp)) return damaged("bad fp");
    e.target = std::string(toks[1]);
    const auto compacted = ParseU64(toks[2]);
    const auto osize = ParseU64(toks[3]);
    const auto odur = ParseU64(toks[4]);
    const auto fsize = ParseU64(toks[5]);
    const auto fdur = ParseU64(toks[6]);
    const auto secbits = ParseHexU64(toks[7]);
    const auto fcbits = ParseHexU64(toks[8]);
    const auto degraded = ParseU64(toks[9]);
    if (!compacted || *compacted > 1 || !osize || !odur || !fsize || !fdur ||
        !secbits || !fcbits || !degraded || *degraded > 1) {
      return damaged("bad record field");
    }
    e.compacted = *compacted == 1;
    e.original_size = *osize;
    e.original_duration = *odur;
    e.final_size = *fsize;
    e.final_duration = *fdur;
    e.compaction_seconds = std::bit_cast<double>(*secbits);
    e.diff_fc = std::bit_cast<double>(*fcbits);
    e.degraded = *degraded == 1;
    if (toks[10] != "-") {
      if (!ErrorClassFromName(toks[10])) return damaged("bad error class");
      e.error_class = std::string(toks[10]);
    }
    if (toks[11] != "-") e.error_stage = std::string(toks[11]);
    if (e.degraded == e.error_class.empty()) {
      return damaged("degradation fields inconsistent");
    }
    if (toks.size() > 12) {
      e.name = std::string(trimmed.substr(toks[12].data() - trimmed.data()));
    }
    ckpt.entries.push_back(std::move(e));
  }
  if (!std::getline(in, line) || Trim(line) != "$end") {
    return damaged("missing $end");
  }
  return ckpt;
}

}  // namespace gpustl::store
