// Content-addressed, on-disk store for fault-simulation results.
//
// The paper's flow already amortizes ONE optimized fault simulation across
// the PTPs of a module via inter-PTP dropping; this store amortizes it
// across PROCESSES: a campaign re-run (or an edited-one-PTP re-run) loads
// every unchanged fault-sim result from disk instead of recomputing it.
// Entries are addressed purely by content (store/fingerprint.h), so any
// invocation — gpustlc faultsim, compact, campaign, a bench — that asks
// the same semantic question hits the same entry.
//
// Entry file `<dir>/<key-hex32>.gsr`, little-endian (docs/FORMATS.md):
//
//   "GSRE"  magic
//   u32     format version (1)
//   u64 u64 key (lo, hi) — must match the file's own address
//   u64     payload size in bytes
//   u64 u64 payload checksum (Hash128 lo, hi)
//   bytes   payload: the serialized FaultSimResult
//
// Corrupt, truncated, version-mismatched or mis-keyed entries are detected
// by construction, counted in stats().bad_entries, logged to stderr and
// treated as a miss — the caller recomputes and overwrites. A cache can
// therefore never make a run wrong, only slow.
//
// Writes go through a unique temp file + atomic rename, so a killed
// campaign leaves either the old entry or the new one, never a torn file.
// The store object is thread-safe (the service worker pool shares one
// instance), and a directory may be shared by several store handles — even
// across processes (the daemon and a CLI run): entries vanishing mid-scan
// or mid-read are treated as plain misses/skips, never as failures.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "fault/faultsim.h"
#include "store/fingerprint.h"

namespace gpustl::store {

/// Per-caller slice of store traffic. A thread that should be attributed
/// (e.g. a service worker running one tenant's job) installs a
/// ScopedStoreAttribution; every Load/Store issued from that thread adds
/// to the installed record in addition to the store's own stats(). The
/// fault-sim worker threads never touch the store themselves, so
/// thread-local scoping captures exactly the owning job's traffic.
struct StoreAttribution {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
};

/// Installs `record` as the calling thread's attribution sink for the
/// scope's lifetime; nesting restores the previous sink on destruction.
class ScopedStoreAttribution {
 public:
  explicit ScopedStoreAttribution(StoreAttribution* record);
  ~ScopedStoreAttribution();
  ScopedStoreAttribution(const ScopedStoreAttribution&) = delete;
  ScopedStoreAttribution& operator=(const ScopedStoreAttribution&) = delete;

 private:
  StoreAttribution* prev_;
};

/// Observability counters, surfaced in campaign reports and bench_store.
struct StoreStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;       // absent entries (bad entries count extra)
  std::uint64_t stores = 0;       // entries written
  std::uint64_t bad_entries = 0;  // corrupt/truncated/mismatched, discarded
  std::uint64_t evictions = 0;    // entries removed by the size budget
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t io_retries = 0;      // write attempts that were re-tried
  std::uint64_t write_failures = 0;  // writes abandoned after all retries

  double hit_rate_percent() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : 100.0 * static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

class ResultStore {
 public:
  /// Opens (creating if needed) the store rooted at `dir`. `max_bytes` > 0
  /// caps the total entry payload on disk: after each write, the
  /// oldest-written entries are evicted until the cap holds.
  explicit ResultStore(std::string dir, std::uint64_t max_bytes = 0);

  const std::string& dir() const { return dir_; }
  std::string EntryPath(const StoreKey& key) const;

  /// Loads and validates an entry. Any defect (missing, short, bad magic/
  /// version/key/checksum, undecodable payload) returns nullopt; defects
  /// other than plain absence also remove the file and count bad_entries.
  std::optional<fault::FaultSimResult> Load(const StoreKey& key);

  /// Serializes and atomically writes an entry, then applies the size cap.
  /// Write failures are retried with capped backoff (store/io_retry.h);
  /// a write that still fails is counted and skipped — caching is an
  /// optimization, never a correctness dependency.
  void Store(const StoreKey& key, const fault::FaultSimResult& result);

  /// Removes an entry that decoded but failed a caller-side sanity check
  /// (e.g. shape mismatch against the query); counts it as bad.
  void Discard(const StoreKey& key);

  /// Snapshot of the counters (by value: the store is shared across
  /// threads, so a reference would race with concurrent updates).
  StoreStats stats() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return stats_;
  }

  /// Payload codec, exposed for tests and bench tooling.
  static std::string EncodeResult(const fault::FaultSimResult& result);
  static bool DecodeResult(std::string_view payload,
                           fault::FaultSimResult* out);

 private:
  void EnforceBudget();

  std::string dir_;
  std::uint64_t max_bytes_ = 0;
  // Counter mutations only — file I/O deliberately runs outside any lock
  // (reads race benignly with atomic renames; writes use unique temp
  // names), so concurrent jobs never serialize on the cache.
  mutable std::mutex stats_mu_;
  StoreStats stats_;
  // Single-flight guard for the eviction scan: a Store that finds a scan
  // already running skips its own (the budget is advisory, and the next
  // over-budget Store re-triggers it). In-process contention is settled by
  // the mutex; cross-process contention by a `.eviction.lock` flock
  // sidecar in the directory itself — two processes scanning the same
  // over-budget directory would otherwise both evict and land the cache
  // well under budget.
  std::mutex budget_mu_;
  std::atomic<std::uint64_t> tmp_seq_{0};
};

/// The single choke point callers use: consult `store` (nullable = caching
/// disabled), fall back to the live engine, write back on miss. Cached
/// results are shape-checked against the query (fault/pattern counts)
/// before being trusted; a mismatch — possible only via key collision or a
/// foreign file planted at the right path — is discarded and recomputed.
///
/// `faults_fp`, when non-null, must equal FingerprintFaults(faults)
/// (campaigns precompute it once per module).
fault::FaultSimResult SimulateWithStore(ResultStore* store,
                                        const netlist::Netlist& nl,
                                        const netlist::PatternSet& patterns,
                                        const std::vector<fault::Fault>& faults,
                                        const BitVec* skip,
                                        const fault::FaultSimOptions& options,
                                        SimModel model,
                                        const Hash128* faults_fp = nullptr);

}  // namespace gpustl::store
