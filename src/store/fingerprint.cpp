#include "store/fingerprint.h"

#include "common/error.h"

namespace gpustl::store {

Hash128 FingerprintPatterns(const netlist::PatternSet& patterns) {
  Hasher128 h;
  h.AddString("gpustl-patterns-v1");
  h.AddU32(static_cast<std::uint32_t>(patterns.width()));
  h.AddU64(patterns.size());
  const std::size_t words = patterns.words_per_pattern();
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    h.AddU64(patterns.cc(p));
    const std::uint64_t* row = patterns.Row(p);
    for (std::size_t w = 0; w < words; ++w) h.AddU64(row[w]);
  }
  return h.Finish();
}

Hash128 FingerprintFaults(const std::vector<fault::Fault>& faults) {
  Hasher128 h;
  h.AddString("gpustl-faults-v1");
  h.AddU64(faults.size());
  for (const fault::Fault& f : faults) {
    h.AddU32(f.gate);
    h.AddU32(static_cast<std::uint32_t>(static_cast<std::int32_t>(f.pin)));
    h.AddBool(f.sa1);
  }
  return h.Finish();
}

Hash128 FingerprintMask(const BitVec* mask) {
  Hasher128 h;
  h.AddString("gpustl-mask-v1");
  h.AddBool(mask != nullptr);
  if (mask != nullptr) {
    h.AddU64(mask->size());
    for (const std::uint64_t w : mask->Words()) h.AddU64(w);
  }
  return h.Finish();
}

StoreKey FaultSimKeyWith(const netlist::Netlist& nl,
                         const netlist::PatternSet& patterns,
                         const Hash128& faults_fp, const BitVec* skip,
                         bool drop_detected, SimModel model) {
  GPUSTL_ASSERT(nl.frozen(), "fault-sim key needs a frozen netlist");
  Hasher128 h;
  h.AddString("gpustl-fsim-v1");
  h.AddU32(static_cast<std::uint32_t>(model));
  h.AddBool(drop_detected);
  h.AddHash(nl.fingerprint());
  h.AddHash(faults_fp);
  h.AddHash(FingerprintPatterns(patterns));
  h.AddHash(FingerprintMask(skip));
  return h.Finish();
}

StoreKey FaultSimKey(const netlist::Netlist& nl,
                     const netlist::PatternSet& patterns,
                     const std::vector<fault::Fault>& faults,
                     const BitVec* skip, bool drop_detected, SimModel model) {
  return FaultSimKeyWith(nl, patterns, FingerprintFaults(faults), skip,
                         drop_detected, model);
}

}  // namespace gpustl::store
