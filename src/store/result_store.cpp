#include "store/result_store.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <system_error>
#include <vector>

#include "common/chaos.h"
#include "common/error.h"
#include "common/status.h"
#include "fault/transition.h"
#include "store/io_retry.h"

namespace gpustl::store {
namespace fs = std::filesystem;

namespace {

constexpr char kMagic[4] = {'G', 'S', 'R', 'E'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::size_t kHeaderBytes = 4 + 4 + 16 + 8 + 16;

void PutU32(std::string& out, std::uint32_t v) {
  for (int k = 0; k < 4; ++k) out.push_back(static_cast<char>(v >> (8 * k)));
}

void PutU64(std::string& out, std::uint64_t v) {
  for (int k = 0; k < 8; ++k) out.push_back(static_cast<char>(v >> (8 * k)));
}

/// Bounded little-endian reader over a byte buffer; Ok() goes false on the
/// first out-of-range read and stays false (truncation-safe decoding).
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool Ok() const { return ok_; }
  std::size_t pos() const { return pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  std::uint32_t U32() { return static_cast<std::uint32_t>(Raw(4)); }
  std::uint64_t U64() { return Raw(8); }

  bool Expect(const char* bytes, std::size_t n) {
    if (pos_ + n > data_.size()) return ok_ = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (data_[pos_ + i] != bytes[i]) return ok_ = false;
    }
    pos_ += n;
    return true;
  }

 private:
  std::uint64_t Raw(std::size_t n) {
    if (!ok_ || pos_ + n > data_.size()) {
      ok_ = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (std::size_t k = 0; k < n; ++k) {
      v |= static_cast<std::uint64_t>(
               static_cast<std::uint8_t>(data_[pos_ + k]))
           << (8 * k);
    }
    pos_ += n;
    return v;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

Hash128 Checksum(std::string_view payload) {
  Hasher128 h;
  h.AddString("gpustl-entry-v1");
  h.AddBytes(payload.data(), payload.size());
  return h.Finish();
}

void LogBadEntry(const std::string& path, const char* why) {
  std::fprintf(stderr, "gpustl-store: discarding %s (%s); will recompute\n",
               path.c_str(), why);
}

thread_local StoreAttribution* t_attribution = nullptr;

/// Holds `<dir>/.eviction.lock` via flock for the scope's lifetime.
/// flock locks belong to the open file description, so two handles in ONE
/// process contend just like two processes do — which is what makes the
/// cross-process eviction exclusion testable in-process.
class EvictionLock {
 public:
  explicit EvictionLock(const std::string& dir) {
    fd_ = ::open((dir + "/.eviction.lock").c_str(),
                 O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (fd_ < 0) {
      // Can't create the sidecar (odd permissions?): proceed unlocked —
      // the budget is advisory and a double-evict only over-trims.
      held_ = true;
      return;
    }
    held_ = ::flock(fd_, LOCK_EX | LOCK_NB) == 0;
  }

  ~EvictionLock() {
    if (fd_ >= 0) {
      if (held_) ::flock(fd_, LOCK_UN);
      ::close(fd_);
    }
  }

  bool held() const { return held_; }

 private:
  int fd_ = -1;
  bool held_ = false;
};

}  // namespace

ScopedStoreAttribution::ScopedStoreAttribution(StoreAttribution* record)
    : prev_(t_attribution) {
  t_attribution = record;
}

ScopedStoreAttribution::~ScopedStoreAttribution() { t_attribution = prev_; }

ResultStore::ResultStore(std::string dir, std::uint64_t max_bytes)
    : dir_(std::move(dir)), max_bytes_(max_bytes) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw IoError("store: cannot create cache directory '" + dir_ +
                  "': " + ec.message());
  }
}

std::string ResultStore::EntryPath(const StoreKey& key) const {
  return (fs::path(dir_) / (key.ToHex() + ".gsr")).string();
}

std::string ResultStore::EncodeResult(const fault::FaultSimResult& result) {
  std::string out;
  PutU64(out, result.first_detect.size());
  for (const std::uint32_t v : result.first_detect) PutU32(out, v);
  PutU64(out, result.detects_per_pattern.size());
  for (const std::uint32_t v : result.detects_per_pattern) PutU32(out, v);
  for (const std::uint32_t v : result.activates_per_pattern) PutU32(out, v);
  PutU64(out, result.num_detected);
  PutU64(out, result.detected_mask.size());
  for (const std::uint64_t w : result.detected_mask.Words()) PutU64(out, w);
  return out;
}

bool ResultStore::DecodeResult(std::string_view payload,
                               fault::FaultSimResult* out) {
  Reader r(payload);
  fault::FaultSimResult res;

  const std::uint64_t num_faults = r.U64();
  if (!r.Ok() || num_faults > payload.size()) return false;  // size sanity
  res.first_detect.resize(num_faults);
  for (std::uint64_t i = 0; i < num_faults; ++i) res.first_detect[i] = r.U32();

  const std::uint64_t num_patterns = r.U64();
  if (!r.Ok() || num_patterns > payload.size()) return false;
  res.detects_per_pattern.resize(num_patterns);
  for (std::uint64_t i = 0; i < num_patterns; ++i) {
    res.detects_per_pattern[i] = r.U32();
  }
  res.activates_per_pattern.resize(num_patterns);
  for (std::uint64_t i = 0; i < num_patterns; ++i) {
    res.activates_per_pattern[i] = r.U32();
  }

  res.num_detected = r.U64();

  const std::uint64_t mask_bits = r.U64();
  if (!r.Ok() || mask_bits != num_faults) return false;
  res.detected_mask.Resize(mask_bits);
  auto& words = res.detected_mask.MutableWords();
  for (std::uint64_t w = 0; w < words.size(); ++w) words[w] = r.U64();

  if (!r.Ok() || !r.AtEnd()) return false;
  // Internal consistency: the scalar count must match the mask.
  if (res.num_detected != res.detected_mask.Count()) return false;
  *out = std::move(res);
  return true;
}

std::optional<fault::FaultSimResult> ResultStore::Load(const StoreKey& key) {
  const std::string path = EntryPath(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    // Absent — or vanished between a concurrent user's eviction and this
    // open. Either way a plain miss, never a failure.
    if (t_attribution != nullptr) ++t_attribution->misses;
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.misses;
    return std::nullopt;
  }
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();

  // Chaos: damage the in-memory read buffer. The validation chain below
  // must classify any damage as a bad entry and fall back to recompute.
  if (chaos::Armed() && !data.empty()) {
    if (chaos::Fail(chaos::Site::kStoreReadShort)) {
      data.resize(data.size() / 2);
    }
    if (!data.empty() && chaos::Fail(chaos::Site::kStoreReadCorrupt)) {
      data[data.size() / 2] = static_cast<char>(data[data.size() / 2] ^ 0x40);
    }
  }

  const char* why = nullptr;
  fault::FaultSimResult result;
  Reader r(data);
  if (data.size() < kHeaderBytes) {
    why = "truncated header";
  } else if (!r.Expect(kMagic, 4)) {
    why = "bad magic";
  } else if (r.U32() != kFormatVersion) {
    why = "format version mismatch";
  } else {
    const std::uint64_t key_lo = r.U64();
    const std::uint64_t key_hi = r.U64();
    const std::uint64_t payload_size = r.U64();
    const std::uint64_t sum_lo = r.U64();
    const std::uint64_t sum_hi = r.U64();
    if (key_lo != key.lo || key_hi != key.hi) {
      why = "key mismatch";
    } else if (data.size() - kHeaderBytes != payload_size) {
      why = "payload size mismatch";
    } else {
      const std::string_view payload(data.data() + kHeaderBytes,
                                     payload_size);
      const Hash128 sum = Checksum(payload);
      if (sum.lo != sum_lo || sum.hi != sum_hi) {
        why = "checksum mismatch";
      } else if (!DecodeResult(payload, &result)) {
        why = "undecodable payload";
      }
    }
  }

  if (why != nullptr) {
    LogBadEntry(path, why);
    if (t_attribution != nullptr) ++t_attribution->misses;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.bad_entries;
      ++stats_.misses;
    }
    std::error_code ec;
    fs::remove(path, ec);
    return std::nullopt;
  }

  if (t_attribution != nullptr) {
    ++t_attribution->hits;
    t_attribution->bytes_read += data.size();
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.hits;
    stats_.bytes_read += data.size();
  }
  return result;
}

void ResultStore::Store(const StoreKey& key,
                        const fault::FaultSimResult& result) {
  const std::string payload = EncodeResult(result);
  const Hash128 sum = Checksum(payload);

  std::string data;
  data.reserve(kHeaderBytes + payload.size());
  data.append(kMagic, 4);
  PutU32(data, kFormatVersion);
  PutU64(data, key.lo);
  PutU64(data, key.hi);
  PutU64(data, payload.size());
  PutU64(data, sum.lo);
  PutU64(data, sum.hi);
  data += payload;

  const std::string path = EntryPath(key);
  // Unique temp name per write: two handles (threads or processes) storing
  // the same key concurrently must never interleave into one temp file.
  const std::string tmp =
      path + "." + std::to_string(static_cast<unsigned long>(::getpid())) +
      "." +
      std::to_string(tmp_seq_.fetch_add(1, std::memory_order_relaxed)) +
      ".tmp";
  const auto attempt = [&]() -> bool {
    if (chaos::Fail(chaos::Site::kStoreWriteFail)) return false;
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) return false;
      out.write(data.data(), static_cast<std::streamsize>(data.size()));
      if (!out) {
        std::error_code ec;
        fs::remove(tmp, ec);
        return false;
      }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
      fs::remove(tmp, ec);
      return false;
    }
    return true;
  };
  std::uint64_t retries = 0;
  const bool ok = RetryIo(RetryPolicy{}, attempt, &retries);
  if (ok && t_attribution != nullptr) {
    ++t_attribution->stores;
    t_attribution->bytes_written += data.size();
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.io_retries += retries;
    if (!ok) {
      ++stats_.write_failures;
    } else {
      ++stats_.stores;
      stats_.bytes_written += data.size();
    }
  }
  if (!ok) {
    std::fprintf(stderr,
                 "gpustl-store: cannot write %s after retries "
                 "(caching skipped)\n",
                 path.c_str());
    return;
  }
  if (max_bytes_ > 0) EnforceBudget();
}

void ResultStore::Discard(const StoreKey& key) {
  const std::string path = EntryPath(key);
  LogBadEntry(path, "query shape mismatch");
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.bad_entries;
  }
  std::error_code ec;
  fs::remove(path, ec);
}

void ResultStore::EnforceBudget() {
  std::unique_lock<std::mutex> single_flight(budget_mu_, std::try_to_lock);
  if (!single_flight.owns_lock()) return;

  // Cross-process single-flight. A daemon, a CLI run and a fleet of
  // distrib workers may all share this directory; if two of them scan an
  // over-budget directory concurrently, each evicts enough on its own and
  // the cache lands far below budget. Skipping on contention is safe for
  // the same reason skipping on the mutex is: whoever holds the lock is
  // already evicting, and the next over-budget Store re-checks.
  EvictionLock eviction_lock(dir_);
  if (!eviction_lock.held()) return;

  struct Entry {
    fs::path path;
    fs::file_time_type mtime;
    std::uint64_t size;
  };
  std::vector<Entry> entries;
  std::uint64_t total = 0;
  std::error_code ec;
  fs::directory_iterator it(dir_, ec);
  if (ec) return;
  const fs::directory_iterator end;
  while (it != end) {
    // Every stat below uses its own error code and skips the entry on
    // failure: with several handles sharing the directory a file can
    // vanish between listing and stat (a concurrent eviction), and that
    // must never abort the scan — or worse, half-count the entry.
    if (it->path().extension() == ".gsr") {
      std::error_code type_ec;
      if (it->is_regular_file(type_ec) && !type_ec) {
        Entry e;
        e.path = it->path();
        std::error_code mtime_ec;
        std::error_code size_ec;
        e.mtime = fs::last_write_time(e.path, mtime_ec);
        e.size = fs::file_size(e.path, size_ec);
        if (!mtime_ec && !size_ec) {
          total += e.size;
          entries.push_back(std::move(e));
        }
      }
    }
    it.increment(ec);
    if (ec) break;  // the iterator is end() after a failed increment
  }
  if (total <= max_bytes_) return;
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.mtime != b.mtime ? a.mtime < b.mtime : a.path < b.path;
  });
  for (const Entry& e : entries) {
    if (total <= max_bytes_) break;
    std::error_code remove_ec;
    const bool removed = fs::remove(e.path, remove_ec);
    if (remove_ec) continue;  // unremovable; try the next oldest
    // removed == false: already gone (the other handle evicted it) — its
    // bytes are freed either way, but only count evictions we performed.
    total -= e.size;
    if (removed) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.evictions;
    }
  }
}

fault::FaultSimResult SimulateWithStore(ResultStore* store,
                                        const netlist::Netlist& nl,
                                        const netlist::PatternSet& patterns,
                                        const std::vector<fault::Fault>& faults,
                                        const BitVec* skip,
                                        const fault::FaultSimOptions& options,
                                        SimModel model,
                                        const Hash128* faults_fp) {
  auto run = [&] {
    return model == SimModel::kTransition
               ? fault::RunTransitionFaultSim(nl, patterns, faults, skip,
                                              options)
               : fault::RunFaultSim(nl, patterns, faults, skip, options);
  };
  if (store == nullptr) return run();

  const StoreKey key =
      faults_fp != nullptr
          ? FaultSimKeyWith(nl, patterns, *faults_fp, skip,
                            options.drop_detected, model)
          : FaultSimKey(nl, patterns, faults, skip, options.drop_detected,
                        model);
  if (auto cached = store->Load(key)) {
    if (cached->first_detect.size() == faults.size() &&
        cached->detects_per_pattern.size() == patterns.size() &&
        cached->activates_per_pattern.size() == patterns.size()) {
      return std::move(*cached);
    }
    store->Discard(key);
  }
  fault::FaultSimResult result = run();
  store->Store(key, result);
  return result;
}

}  // namespace gpustl::store
