// Cache-key derivation for the content-addressed result store.
//
// A fault-simulation run is a pure function of (module topology, applied
// pattern sequence, fault list, cross-PTP skip mask, fault model, dropping
// mode). Everything else in FaultSimOptions — thread count, structural
// collapsing, cone pruning — is bit-identical by construction (the PR 1/2
// engines guarantee it), so it is deliberately EXCLUDED from the key:
// a result computed with 8 threads and collapsing serves a serial
// no-collapse run, and vice versa.
//
// Each component is fingerprinted independently with a domain-tagged
// Hasher128 and the component digests are combined into the final
// StoreKey. Field orders are frozen by docs/FORMATS.md; bump the domain
// tag ("gpustl-fsim-v1", ...) when a component's semantics change so stale
// entries miss instead of aliasing.
#pragma once

#include <vector>

#include "common/bitops.h"
#include "common/hash.h"
#include "fault/fault.h"
#include "netlist/netlist.h"
#include "netlist/patterns.h"

namespace gpustl::store {

/// The store's 128-bit content address.
using StoreKey = Hash128;

/// Fault model selector folded into the key (stuck-at results never serve
/// transition queries: same sites, different detection semantics).
enum class SimModel : std::uint32_t { kStuckAt = 0, kTransition = 1 };

/// Digest of a pattern sequence: width, order, cc stamps, bit contents.
Hash128 FingerprintPatterns(const netlist::PatternSet& patterns);

/// Digest of a fault list: site addressing and polarity, in list order.
Hash128 FingerprintFaults(const std::vector<fault::Fault>& faults);

/// Digest of a skip mask; nullptr (simulate everything) gets a distinct
/// digest from an all-zero mask of any size.
Hash128 FingerprintMask(const BitVec* mask);

/// The cache key for one fault-simulation run. `nl` must be frozen (the
/// key folds in nl.fingerprint()).
StoreKey FaultSimKey(const netlist::Netlist& nl,
                     const netlist::PatternSet& patterns,
                     const std::vector<fault::Fault>& faults,
                     const BitVec* skip, bool drop_detected, SimModel model);

/// Same, reusing a precomputed fault-list digest (the list is fixed per
/// module; campaigns fingerprint it once instead of per fault sim).
StoreKey FaultSimKeyWith(const netlist::Netlist& nl,
                         const netlist::PatternSet& patterns,
                         const Hash128& faults_fp, const BitVec* skip,
                         bool drop_detected, SimModel model);

}  // namespace gpustl::store
