#include "gpu/sm.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "circuits/reference.h"
#include "common/bitops.h"
#include "common/error.h"
#include "common/strutil.h"

namespace gpustl::gpu {

using isa::CmpOp;
using isa::ExecUnit;
using isa::Format;
using isa::Instruction;
using isa::Opcode;
using isa::Program;
using isa::SpecialReg;

namespace {

float BitsToFloat(std::uint32_t bits) {
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

std::uint32_t FloatToBits(float f) {
  std::uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  return bits;
}

/// FP32 datapath semantics (software reference; the FP lanes are not among
/// the gate-level target modules).
std::uint32_t FpOp(Opcode op, std::uint32_t a, std::uint32_t b,
                   std::uint32_t c) {
  const float fa = BitsToFloat(a);
  const float fb = BitsToFloat(b);
  const float fc = BitsToFloat(c);
  switch (op) {
    case Opcode::FADD: return FloatToBits(fa + fb);
    case Opcode::FMUL: return FloatToBits(fa * fb);
    case Opcode::FFMA: return FloatToBits(fa * fb + fc);
    case Opcode::FMIN: return FloatToBits(std::fmin(fa, fb));
    case Opcode::FMAX: return FloatToBits(std::fmax(fa, fb));
    case Opcode::FABS: return FloatToBits(std::fabs(fa));
    case Opcode::FNEG: return FloatToBits(-fa);
    case Opcode::F2I:
      return static_cast<std::uint32_t>(static_cast<std::int32_t>(fa));
    case Opcode::I2F:
      return FloatToBits(static_cast<float>(static_cast<std::int32_t>(a)));
    default:
      throw SimError("FpOp: not an FP opcode");
  }
}

bool FpCompare(CmpOp cmp, std::uint32_t a, std::uint32_t b) {
  const float fa = BitsToFloat(a);
  const float fb = BitsToFloat(b);
  switch (cmp) {
    case CmpOp::kLT: return fa < fb;
    case CmpOp::kLE: return fa <= fb;
    case CmpOp::kGT: return fa > fb;
    case CmpOp::kGE: return fa >= fb;
    case CmpOp::kEQ: return fa == fb;
    case CmpOp::kNE: return fa != fb;
  }
  return false;
}

/// SFU architectural semantics (software transcendental functions; the
/// gate-level SFU module sees only the input patterns).
std::uint32_t SfuArchOp(Opcode op, std::uint32_t a) {
  const float x = BitsToFloat(a);
  switch (op) {
    case Opcode::RCP: return FloatToBits(1.0f / x);
    case Opcode::RSQ: return FloatToBits(1.0f / std::sqrt(x));
    case Opcode::SIN: return FloatToBits(std::sin(x));
    case Opcode::COS: return FloatToBits(std::cos(x));
    case Opcode::LG2: return FloatToBits(std::log2(x));
    case Opcode::EX2: return FloatToBits(std::exp2(x));
    default:
      throw SimError("SfuArchOp: not an SFU opcode");
  }
}

enum class StackKind : std::uint8_t { kReconv, kDiv };

struct StackEntry {
  StackKind kind;
  std::uint32_t pc;
  std::uint32_t mask;
};

struct WarpState {
  std::uint32_t pc = 0;
  std::uint32_t active = 0;   // live, currently-executing lanes
  std::uint32_t exited = 0;   // lanes that hit EXIT
  std::uint32_t full = 0;     // all lanes this warp owns
  std::vector<StackEntry> simt;
  std::vector<std::uint32_t> call_stack;
  bool at_barrier = false;

  bool done() const { return active == 0 && simt.empty(); }
};

}  // namespace

Sm::Sm(const SmConfig& config) : config_(config) {
  GPUSTL_ASSERT(config_.num_sp == 8 || config_.num_sp == 16 ||
                    config_.num_sp == 32,
                "FlexGripPlus supports 8/16/32 SP cores");
}

void Sm::AddMonitor(ExecMonitor* monitor) { monitors_.push_back(monitor); }

void Sm::SetLaneOverride(LaneOverride override) {
  lane_override_ = std::move(override);
}

RunResult Sm::Run(const Program& prog) {
  std::vector<int> blocks(static_cast<std::size_t>(prog.config().blocks));
  for (int b = 0; b < prog.config().blocks; ++b) {
    blocks[static_cast<std::size_t>(b)] = b;
  }
  return Run(prog, blocks);
}

RunResult Sm::Run(const Program& prog, const std::vector<int>& blocks) {
  prog.Validate();
  const auto& code = prog.code();
  RunResult result;

  // Preload global memory input data.
  for (const auto& seg : prog.data()) {
    for (std::size_t i = 0; i < seg.words.size(); ++i) {
      result.global.Store(seg.addr + static_cast<std::uint32_t>(i) * 4,
                          seg.words[i]);
    }
  }

  DenseMemory const_mem(config_.const_words);

  const int tpb = prog.config().threads_per_block;
  const int num_warps = prog.config().warps_per_block();
  std::uint64_t cc = 0;

  for (const int block : blocks) {
    GPUSTL_ASSERT(block >= 0 && block < prog.config().blocks,
                  "block index out of range");
    // Per-block state.
    std::vector<std::uint32_t> regs(
        static_cast<std::size_t>(tpb) * isa::kNumRegs, 0);
    std::vector<std::uint8_t> preds(
        static_cast<std::size_t>(tpb) * isa::kNumPredRegs, 0);
    DenseMemory shared(config_.shared_words);
    DenseMemory local(config_.local_words * static_cast<std::uint32_t>(tpb));

    std::vector<WarpState> warps(static_cast<std::size_t>(num_warps));
    for (int w = 0; w < num_warps; ++w) {
      WarpState& ws = warps[static_cast<std::size_t>(w)];
      const int lanes = std::min(32, tpb - w * 32);
      ws.full = lanes >= 32 ? ~0u : ((1u << lanes) - 1);
      ws.active = ws.full;
      ws.pc = 0;
    }

    auto reg = [&](int tid, int r) -> std::uint32_t& {
      return regs[static_cast<std::size_t>(tid) * isa::kNumRegs +
                  static_cast<std::size_t>(r)];
    };
    auto pred = [&](int tid, int p) -> std::uint8_t& {
      return preds[static_cast<std::size_t>(tid) * isa::kNumPredRegs +
                   static_cast<std::size_t>(p)];
    };

    // Unwinds the SIMT stack after the active mask went empty.
    auto unwind = [&](WarpState& ws) {
      while (ws.active == 0 && !ws.simt.empty()) {
        const StackEntry e = ws.simt.back();
        ws.simt.pop_back();
        ws.active = e.mask & ~ws.exited;
        ws.pc = e.pc;
      }
    };

    auto all_done = [&] {
      for (const WarpState& ws : warps) {
        if (!ws.done()) return false;
      }
      return true;
    };

    while (!all_done()) {
      bool issued_any = false;
      for (int w = 0; w < num_warps; ++w) {
        WarpState& ws = warps[static_cast<std::size_t>(w)];
        if (ws.done() || ws.at_barrier) continue;
        issued_any = true;

        if (cc > config_.max_cycles) {
          throw SimError("watchdog: kernel exceeded max_cycles");
        }

        // Implicit EXIT at end of code.
        if (ws.pc >= code.size()) {
          ws.exited |= ws.active;
          ws.active = 0;
          unwind(ws);
          continue;
        }

        const std::uint32_t pc = ws.pc;
        const Instruction& inst = code[pc];
        const auto& info = inst.info();

        // Per-lane predication.
        std::uint32_t exec_mask = ws.active;
        if (inst.predicated) {
          std::uint32_t m = 0;
          for (int lane = 0; lane < 32; ++lane) {
            if (!((ws.active >> lane) & 1)) continue;
            const int tid = w * 32 + lane;
            const bool p = pred(tid, inst.pred_reg) != 0;
            if (p != inst.pred_negated) m |= 1u << lane;
          }
          exec_mask = m;
        }

        // Decode event (the DU sees the word on every issue). Lane events
        // share the same cc stamp: the labeling join in the compactor maps
        // module patterns back to the issuing instruction through it.
        const std::uint64_t issue_cc = cc;
        if (!monitors_.empty()) {
          DecodeEvent ev;
          ev.cc = issue_cc;
          ev.block = block;
          ev.warp = w;
          ev.pc = pc;
          ev.active_mask = exec_mask;
          ev.inst = inst;
          ev.encoded = inst.Encode();
          for (ExecMonitor* m : monitors_) m->OnDecode(ev);
        }
        ++result.dynamic_instructions;

        const int active_count = PopCount(exec_mask);

        // Timing.
        int units = 1;
        switch (info.unit) {
          case ExecUnit::kSpInt:
          case ExecUnit::kSpFp:
            units = config_.num_sp;
            break;
          case ExecUnit::kSfu:
            units = config_.num_sfu;
            break;
          case ExecUnit::kMem:
          case ExecUnit::kControl:
            units = 1;
            break;
        }
        const int subcycles =
            info.unit == ExecUnit::kMem
                ? active_count
                : (active_count + units - 1) / std::max(units, 1);
        cc += static_cast<std::uint64_t>(config_.issue_overhead) +
              static_cast<std::uint64_t>(info.latency) +
              static_cast<std::uint64_t>(std::max(subcycles, 1));

        // Control flow.
        if (info.unit == ExecUnit::kControl) {
          switch (inst.op) {
            case Opcode::NOP:
              ws.pc = pc + 1;
              break;
            case Opcode::SSY:
              ws.simt.push_back({StackKind::kReconv, inst.imm, ws.active});
              ws.pc = pc + 1;
              break;
            case Opcode::BRA: {
              const std::uint32_t taken =
                  inst.predicated ? exec_mask : ws.active;
              if (taken == 0) {
                ws.pc = pc + 1;
              } else if (taken == ws.active) {
                ws.pc = inst.imm;
              } else {
                // Divergence: run the not-taken side first.
                ws.simt.push_back({StackKind::kDiv, inst.imm, taken});
                ws.active &= ~taken;
                ws.pc = pc + 1;
              }
              break;
            }
            case Opcode::SYNC: {
              if (ws.simt.empty()) {
                ws.pc = pc + 1;
              } else {
                const StackEntry e = ws.simt.back();
                ws.simt.pop_back();
                ws.active = e.mask & ~ws.exited;
                ws.pc = e.pc;
                unwind(ws);
              }
              break;
            }
            case Opcode::CAL:
              ws.call_stack.push_back(pc + 1);
              ws.pc = inst.imm;
              break;
            case Opcode::RET:
              if (ws.call_stack.empty()) {
                ws.exited |= ws.active;
                ws.active = 0;
                unwind(ws);
              } else {
                ws.pc = ws.call_stack.back();
                ws.call_stack.pop_back();
              }
              break;
            case Opcode::EXIT:
              ws.exited |= exec_mask;
              ws.active &= ~exec_mask;
              if (ws.active == 0) unwind(ws);
              else ws.pc = pc + 1;
              break;
            case Opcode::BAR:
              ws.at_barrier = true;
              ws.pc = pc + 1;
              break;
            default:
              throw SimError("unhandled control opcode");
          }

          // Barrier release: all live warps waiting.
          if (inst.op == Opcode::BAR) {
            bool all_waiting = true;
            for (const WarpState& other : warps) {
              if (!other.done() && !other.at_barrier) {
                all_waiting = false;
                break;
              }
            }
            if (all_waiting) {
              for (WarpState& other : warps) other.at_barrier = false;
            }
          }
          continue;
        }

        // Data instructions: per-lane execution.
        for (int lane = 0; lane < 32; ++lane) {
          if (!((exec_mask >> lane) & 1)) continue;
          const int tid = w * 32 + lane;

          std::uint32_t a = reg(tid, inst.src_a);
          std::uint32_t b = inst.has_imm ? inst.imm : reg(tid, inst.src_b);
          std::uint32_t c = reg(tid, inst.src_c);
          std::uint32_t value = 0;
          bool pred_result = false;

          switch (info.unit) {
            case ExecUnit::kSpInt: {
              if (inst.op == Opcode::S2R) {
                switch (static_cast<SpecialReg>(inst.imm)) {
                  case SpecialReg::kTid: b = static_cast<std::uint32_t>(tid); break;
                  case SpecialReg::kCtaid: b = static_cast<std::uint32_t>(block); break;
                  case SpecialReg::kNtid: b = static_cast<std::uint32_t>(tpb); break;
                  case SpecialReg::kNctaid:
                    b = static_cast<std::uint32_t>(prog.config().blocks);
                    break;
                  case SpecialReg::kLaneid: b = static_cast<std::uint32_t>(lane); break;
                  case SpecialReg::kWarpid: b = static_cast<std::uint32_t>(w); break;
                }
              }
              const circuits::SpResult r =
                  circuits::SpIntOp(inst.op, inst.cmp, a, b, c);
              value = r.value;
              pred_result = r.pred;
              break;
            }
            case ExecUnit::kSpFp:
              if (inst.op == Opcode::FSETP) {
                pred_result = FpCompare(inst.cmp, a, b);
              } else {
                value = FpOp(inst.op, a, b, c);
              }
              break;
            case ExecUnit::kSfu:
              value = SfuArchOp(inst.op, a);
              break;
            case ExecUnit::kMem: {
              const std::uint32_t addr = a + inst.imm;
              switch (inst.op) {
                case Opcode::LDG: value = result.global.Load(addr); break;
                case Opcode::STG:
                  value = reg(tid, inst.dst);
                  result.global.Store(addr, value);
                  break;
                case Opcode::LDS: value = shared.Load(addr); break;
                case Opcode::STS:
                  value = reg(tid, inst.dst);
                  shared.Store(addr, value);
                  break;
                case Opcode::LDC: value = const_mem.Load(addr); break;
                case Opcode::LDL:
                  value = local.Load(
                      addr + static_cast<std::uint32_t>(tid) *
                                 config_.local_words * 4);
                  break;
                case Opcode::STL:
                  value = reg(tid, inst.dst);
                  local.Store(addr + static_cast<std::uint32_t>(tid) *
                                         config_.local_words * 4,
                              value);
                  break;
                default:
                  throw SimError("unhandled memory opcode");
              }
              break;
            }
            case ExecUnit::kControl:
              break;  // handled above
          }

          LaneEvent ev;
          ev.cc = issue_cc;
          ev.block = block;
          ev.warp = w;
          ev.lane = lane;
          ev.tid = tid;
          ev.pc = pc;
          ev.inst = inst;
          ev.a = a;
          ev.b = b;
          ev.c = c;
          ev.result = value;
          ev.pred_result = pred_result;

          // Fault-injection hook: may substitute the lane result before it
          // is architecturally committed.
          if (lane_override_ &&
              lane_override_(ev, &value, &pred_result)) {
            ev.result = value;
            ev.pred_result = pred_result;
          }

          // Write-back.
          if (info.writes_reg && !info.writes_memory) {
            reg(tid, inst.dst) = value;
          }
          if (info.writes_pred) {
            pred(tid, inst.dst) = pred_result ? 1 : 0;
          }

          for (ExecMonitor* m : monitors_) m->OnLane(ev);
        }

        ws.pc = pc + 1;
      }

      if (!issued_any) {
        // Everyone alive is at a barrier but the release check only runs on
        // BAR issue; release here to avoid deadlock when the last warp to
        // arrive was also the last live one processed.
        bool any_alive = false;
        for (WarpState& ws : warps) {
          if (!ws.done()) {
            any_alive = true;
            ws.at_barrier = false;
          }
        }
        if (!any_alive) break;
      }
    }
  }

  result.total_cycles = cc;
  return result;
}

}  // namespace gpustl::gpu
