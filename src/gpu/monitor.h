// Execution-monitor hooks: the paper's "hardware monitor incorporated for
// tracing purposes in one SM of the GPU without any effect on the
// functional operation of the PTP".
//
// The SM invokes monitors on every instruction issue (decode event, once per
// warp-instruction) and on every lane execution (once per active thread).
// The trace module builds the Tracing Report and the per-module test-pattern
// reports (VCDE) from these callbacks; monitors never mutate GPU state.
#pragma once

#include <cstdint>

#include "isa/instruction.h"

namespace gpustl::gpu {

/// One decode event: warp `warp` issued the instruction at `pc` at clock
/// cycle `cc` with thread activity `active_mask` (bit = lane within warp).
struct DecodeEvent {
  std::uint64_t cc = 0;
  int block = 0;
  int warp = 0;  // warp id within the block
  std::uint32_t pc = 0;
  std::uint32_t active_mask = 0;
  isa::Instruction inst;
  std::uint64_t encoded = 0;  // the 64-bit word as seen by the Decoder Unit
};

/// One lane execution: thread `tid` (block-local) executed the instruction
/// with resolved operands a/b/c producing `result` (and `pred_result` for
/// SETP ops). `cc` equals the decode event's cc (module patterns are stamped
/// with the issue cycle, which is what the labeling join uses).
struct LaneEvent {
  std::uint64_t cc = 0;
  int block = 0;
  int warp = 0;
  int lane = 0;  // lane within the warp (0..31)
  int tid = 0;   // thread id within the block
  std::uint32_t pc = 0;
  isa::Instruction inst;
  std::uint32_t a = 0, b = 0, c = 0;
  std::uint32_t result = 0;
  bool pred_result = false;
};

/// Observer interface. Implementations must not throw on well-formed events.
class ExecMonitor {
 public:
  virtual ~ExecMonitor() = default;
  virtual void OnDecode(const DecodeEvent& event) = 0;
  virtual void OnLane(const LaneEvent& event) = 0;
};

}  // namespace gpustl::gpu
