#include "gpu/memory.h"

#include "common/error.h"
#include "common/strutil.h"

namespace gpustl::gpu {

std::uint32_t WordIndex(std::uint32_t byte_addr) {
  if (byte_addr % 4 != 0) {
    throw SimError(Format("misaligned word access at 0x%x", byte_addr));
  }
  return byte_addr / 4;
}

std::uint32_t GlobalMemory::Load(std::uint32_t byte_addr) const {
  const auto it = words_.find(WordIndex(byte_addr));
  return it == words_.end() ? 0u : it->second;
}

void GlobalMemory::Store(std::uint32_t byte_addr, std::uint32_t value) {
  words_[WordIndex(byte_addr)] = value;
}

std::uint32_t DenseMemory::Load(std::uint32_t byte_addr) const {
  const std::uint32_t idx = WordIndex(byte_addr);
  if (idx >= words_.size()) {
    throw SimError(Format("memory load out of range at 0x%x", byte_addr));
  }
  return words_[idx];
}

void DenseMemory::Store(std::uint32_t byte_addr, std::uint32_t value) {
  const std::uint32_t idx = WordIndex(byte_addr);
  if (idx >= words_.size()) {
    throw SimError(Format("memory store out of range at 0x%x", byte_addr));
  }
  words_[idx] = value;
}

}  // namespace gpustl::gpu
