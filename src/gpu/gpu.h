// The full GPU: an array of SMs under a general controller.
//
// FlexGripPlus "is organized as a set of arrays of SMs. One general
// controller controls the tasks submitted to every SM." The Gpu class
// models that level: grid blocks are dispatched round-robin to `num_sms`
// SMs, each SM executes its blocks with its own clock, and the kernel's
// duration is the slowest SM's. Global memory is shared (block-disjoint
// result windows, as STL kernels use, stay race-free by construction; the
// model merges per-SM write sets and reports conflicts).
//
// Monitors observe all SMs; DecodeEvent/LaneEvent.block identifies the
// originating block, so per-module pattern capture and tracing work
// unchanged — the paper instruments exactly one SM, which corresponds to
// `Gpu::Run` with a monitor filter on the SM of interest.
#pragma once

#include <vector>

#include "gpu/sm.h"

namespace gpustl::gpu {

struct GpuConfig {
  int num_sms = 1;
  SmConfig sm;
};

/// Result of a whole-GPU kernel run.
struct GpuRunResult {
  std::uint64_t total_cycles = 0;       // max over SMs (parallel execution)
  std::uint64_t sum_cycles = 0;         // sum over SMs (total work)
  std::uint64_t dynamic_instructions = 0;
  GlobalMemory global;                  // merged write image
  std::size_t write_conflicts = 0;      // same word written by two SMs
  std::vector<std::uint64_t> per_sm_cycles;
};

/// Multi-SM executor.
class Gpu {
 public:
  explicit Gpu(const GpuConfig& config = {});

  /// Attaches a monitor to one SM (the paper's single-SM hardware monitor)
  /// or to all SMs (sm_index = -1). Not owned.
  void AddMonitor(ExecMonitor* monitor, int sm_index = 0);

  /// Runs the kernel: blocks are assigned round-robin to SMs
  /// (block b -> SM b % num_sms), each SM runs its block list in order.
  GpuRunResult Run(const isa::Program& prog);

  const GpuConfig& config() const { return config_; }

 private:
  GpuConfig config_;
  // monitor, sm filter (-1 = all)
  std::vector<std::pair<ExecMonitor*, int>> monitors_;
};

}  // namespace gpustl::gpu
