#include "gpu/gpu.h"

#include <algorithm>

#include "common/error.h"

namespace gpustl::gpu {

Gpu::Gpu(const GpuConfig& config) : config_(config) {
  GPUSTL_ASSERT(config_.num_sms >= 1, "GPU needs at least one SM");
}

void Gpu::AddMonitor(ExecMonitor* monitor, int sm_index) {
  GPUSTL_ASSERT(sm_index >= -1 && sm_index < config_.num_sms,
                "monitor SM index out of range");
  monitors_.push_back({monitor, sm_index});
}

GpuRunResult Gpu::Run(const isa::Program& prog) {
  prog.Validate();
  GpuRunResult result;
  result.per_sm_cycles.assign(static_cast<std::size_t>(config_.num_sms), 0);

  // Initial global image (the preloaded input data), for write detection.
  GlobalMemory initial;
  for (const auto& seg : prog.data()) {
    for (std::size_t i = 0; i < seg.words.size(); ++i) {
      initial.Store(seg.addr + static_cast<std::uint32_t>(i) * 4,
                    seg.words[i]);
    }
  }
  result.global = initial;

  for (int s = 0; s < config_.num_sms; ++s) {
    // Blocks dispatched round-robin by the general controller.
    std::vector<int> blocks;
    for (int b = s; b < prog.config().blocks; b += config_.num_sms) {
      blocks.push_back(b);
    }
    if (blocks.empty()) continue;

    Sm sm(config_.sm);
    for (const auto& [monitor, filter] : monitors_) {
      if (filter == -1 || filter == s) sm.AddMonitor(monitor);
    }
    const RunResult r = sm.Run(prog, blocks);
    result.per_sm_cycles[static_cast<std::size_t>(s)] = r.total_cycles;
    result.sum_cycles += r.total_cycles;
    result.total_cycles = std::max(result.total_cycles, r.total_cycles);
    result.dynamic_instructions += r.dynamic_instructions;

    // Merge this SM's writes into the global image.
    for (const auto& [word, value] : r.global.words()) {
      const std::uint32_t addr = word * 4;
      const bool is_initial = initial.words().count(word) != 0 &&
                              initial.Load(addr) == value;
      if (is_initial) continue;  // unchanged input data
      const auto merged_it = result.global.words().find(word);
      const bool merged_has = merged_it != result.global.words().end();
      const bool merged_is_initial =
          initial.words().count(word) != 0 &&
          merged_has && merged_it->second == initial.Load(addr);
      if (merged_has && !merged_is_initial && merged_it->second != value) {
        ++result.write_conflicts;
      }
      result.global.Store(addr, value);
    }
  }

  return result;
}

}  // namespace gpustl::gpu
