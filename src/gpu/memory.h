// GPU memory spaces.
//
// The model exposes the FlexGripPlus memory hierarchy: a global memory
// (sparse, word-addressed), per-block shared memory, per-thread local
// memory, and a read-only constant memory. All accesses are 32-bit words at
// byte addresses (word-aligned); misaligned or out-of-range accesses raise
// SimError — a PTP that faults the memory system is a malformed test.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace gpustl::gpu {

/// Sparse word-addressed global memory. Reads of untouched words return 0.
class GlobalMemory {
 public:
  std::uint32_t Load(std::uint32_t byte_addr) const;
  void Store(std::uint32_t byte_addr, std::uint32_t value);

  /// All words ever written (the observable "memory output of the GPU").
  const std::map<std::uint32_t, std::uint32_t>& words() const { return words_; }

  bool operator==(const GlobalMemory&) const = default;

 private:
  std::map<std::uint32_t, std::uint32_t> words_;
};

/// Dense bounded word memory for shared/local/constant spaces.
class DenseMemory {
 public:
  explicit DenseMemory(std::uint32_t num_words) : words_(num_words, 0) {}

  std::uint32_t Load(std::uint32_t byte_addr) const;
  void Store(std::uint32_t byte_addr, std::uint32_t value);

  std::uint32_t size_words() const {
    return static_cast<std::uint32_t>(words_.size());
  }

 private:
  std::vector<std::uint32_t> words_;
};

/// Checks alignment; returns the word index. Throws SimError on misalign.
std::uint32_t WordIndex(std::uint32_t byte_addr);

}  // namespace gpustl::gpu
