// SM configuration, mirroring FlexGripPlus's configurability: the number of
// SP cores per SM is selectable among 8, 16 and 32; the model has 8 FP32
// lanes and 2 SFUs (the G80 ratio), one SM, and a 5-stage pipeline whose
// fill cost appears as a fixed per-issue overhead in the timing model.
#pragma once

#include <cstdint>

namespace gpustl::gpu {

struct SmConfig {
  /// SP cores per SM (FlexGripPlus supports 8, 16, 32).
  int num_sp = 8;

  /// SFUs per SM.
  int num_sfu = 2;

  /// Fixed per-issue pipeline overhead in clock cycles (fetch/decode/read
  /// stages of the 5-stage pipeline).
  int issue_overhead = 3;

  /// Watchdog: abort execution after this many clock cycles.
  std::uint64_t max_cycles = 200'000'000;

  /// Shared memory words per block.
  std::uint32_t shared_words = 4096;

  /// Local memory words per thread.
  std::uint32_t local_words = 64;

  /// Constant memory words.
  std::uint32_t const_words = 2048;
};

}  // namespace gpustl::gpu
