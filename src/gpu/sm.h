// The Streaming Multiprocessor model: a functional SIMT executor with
// deterministic cycle accounting, FlexGripPlus-style.
//
// Execution model:
//  * one SM; blocks of the grid run sequentially on it;
//  * warps of 32 threads; warps are scheduled round-robin, one instruction
//    per scheduling slot (the in-order, non-overlapped pipeline of the
//    original FlexGrip);
//  * per warp-instruction the clock advances by
//        issue_overhead + unit latency + ceil(active / units)
//    where `units` is num_sp for SP ops, num_sfu for SFU ops and 1
//    (serialized) for memory accesses;
//  * divergence is handled with the G80 SSY/SYNC reconvergence stack;
//  * BAR synchronizes all live warps of the block.
//
// Monitors observe every decode and lane-execution event (see monitor.h);
// this is the substrate both the Tracing Report and the module test-pattern
// capture are built on.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "gpu/config.h"
#include "gpu/memory.h"
#include "gpu/monitor.h"
#include "isa/program.h"

namespace gpustl::gpu {

/// Outcome of a kernel run.
struct RunResult {
  std::uint64_t total_cycles = 0;
  std::uint64_t dynamic_instructions = 0;  // warp-instructions issued
  GlobalMemory global;                     // final global-memory state
};

/// Lane-result override hook for fault-injection experiments: called for
/// every executed lane BEFORE write-back with the architecturally computed
/// value/predicate; may modify them (return true if it did). The fault
/// injector uses this to substitute gate-level faulty results.
using LaneOverride =
    std::function<bool(const LaneEvent& event, std::uint32_t* value,
                       bool* pred)>;

/// One SM executing one kernel at a time.
class Sm {
 public:
  explicit Sm(const SmConfig& config = {});

  /// Registers a monitor (not owned). Monitors fire in registration order.
  void AddMonitor(ExecMonitor* monitor);

  /// Installs the lane-result override (empty = none).
  void SetLaneOverride(LaneOverride override);

  /// Runs the program to completion (all warps exited). Throws SimError on
  /// malformed execution (bad memory access, runaway kernel, ...).
  RunResult Run(const isa::Program& prog);

  /// Runs only the listed block indices (the multi-SM dispatcher's share);
  /// CTAID still reports each block's true grid index.
  RunResult Run(const isa::Program& prog, const std::vector<int>& blocks);

  const SmConfig& config() const { return config_; }

 private:
  SmConfig config_;
  std::vector<ExecMonitor*> monitors_;
  LaneOverride lane_override_;
};

}  // namespace gpustl::gpu
