// Gate-level netlist graph.
//
// Representation: every gate drives exactly one net, and the net is
// identified by the gate's id (an AIG-style "gate = net" structure). Primary
// inputs are kInput pseudo-gates; primary outputs are a designated list of
// net ids. This keeps the simulators cache-friendly and makes fault sites
// (gate output / gate input pin) trivially addressable.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/hash.h"
#include "netlist/cell.h"

namespace gpustl::netlist {

using NetId = std::uint32_t;
inline constexpr NetId kNoNet = UINT32_MAX;
inline constexpr int kMaxFanin = 4;

/// One gate instance; its output net id equals its index in the netlist.
struct Gate {
  CellType type = CellType::kInput;
  std::array<NetId, kMaxFanin> fanin{kNoNet, kNoNet, kNoNet, kNoNet};

  int fanin_count() const { return CellFaninCount(type); }
};

/// A named module netlist: gates, primary inputs, primary outputs.
class Netlist {
 public:
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  std::size_t gate_count() const { return gates_.size(); }
  const Gate& gate(NetId id) const { return gates_[id]; }
  const std::vector<Gate>& gates() const { return gates_; }

  const std::vector<NetId>& inputs() const { return inputs_; }
  const std::vector<NetId>& outputs() const { return outputs_; }
  std::size_t num_inputs() const { return inputs_.size(); }
  std::size_t num_outputs() const { return outputs_.size(); }

  /// Optional pin names for debugging / VCDE headers.
  const std::string& input_name(std::size_t i) const { return input_names_[i]; }
  const std::string& output_name(std::size_t i) const { return output_names_[i]; }

  // --- construction ---

  /// Adds a primary input; returns its net id.
  NetId AddInput(std::string name);

  /// Adds a gate over existing nets; returns its output net id.
  NetId AddGate(CellType type, std::initializer_list<NetId> fanin);
  NetId AddGate(CellType type, const std::vector<NetId>& fanin);

  /// Marks an existing net as a primary output.
  void MarkOutput(NetId net, std::string name);

  /// Validates structure (fanin in range, acyclic through combinational
  /// gates) and freezes the netlist: computes the topological evaluation
  /// order and fanout lists. Must be called before simulation.
  void Freeze();

  bool frozen() const { return frozen_; }

  /// Topological order over combinational gates (inputs and DFF outputs are
  /// sources and do not appear; DFF data pins are consumed at Step time).
  const std::vector<NetId>& topo_order() const { return topo_; }

  /// Gates whose fanin includes `net` (used by the event-driven fault sim).
  /// Stored flat in CSR layout so the hot propagation loop walks one
  /// contiguous array instead of chasing per-net vectors.
  std::span<const NetId> fanout(NetId net) const {
    return {fanout_list_.data() + fanout_offset_[net],
            fanout_offset_[net + 1] - fanout_offset_[net]};
  }

  /// Depth-levelized: level of each net (inputs at 0).
  const std::vector<std::uint32_t>& levels() const { return level_; }

  /// Largest level of any net (0 for an empty netlist).
  std::uint32_t max_level() const { return max_level_; }

  // --- output-cone reachability (computed at Freeze) ---
  //
  // For every net, a bitset over primary-output *indices* (bit k =
  // outputs()[k]) that are combinationally reachable from the net. The
  // fault simulator uses these to scan only a fault's cone during
  // detection and to stop propagating events that can no longer reach any
  // observed output. DFF data pins are a sequential boundary: cones do not
  // propagate through them.

  /// Words per cone mask: ceil(num_outputs / 64).
  std::size_t cone_words() const { return cone_words_; }

  /// The cone mask of `net` (`cone_words()` packed words).
  const std::uint64_t* OutputCone(NetId net) const {
    return cone_.data() + static_cast<std::size_t>(net) * cone_words_;
  }

  /// True when at least one primary output is in `net`'s cone.
  bool ReachesOutput(NetId net) const { return reaches_output_[net] != 0; }

  // --- fanout-free regions (computed at Freeze) ---
  //
  // A net is a *stem* when a fault effect on it can escape to more than one
  // place or is directly observable: fanout size != 1, primary output, or
  // its single consumer is sequential (DFF). Every other net funnels through
  // exactly one gate pin, so following single-fanout edges forward reaches a
  // unique stem; the fanout-free region (FFR) of a stem is the stem plus all
  // nets that drain into it this way. FFRs partition the nets, internal
  // members have no reconvergence (each feeds exactly one pin of one gate),
  // and critical-path tracing from the stem backwards is therefore *exact*
  // within a region — which is what the FFR-clustered fault simulator
  // exploits. Derived data only: the content fingerprint is unaffected.

  /// Number of fanout-free regions (== number of stems).
  std::size_t num_ffrs() const { return ffr_stems_.size(); }

  /// The stem net of region `f`. Stems are listed in ascending net id.
  NetId ffr_stem(std::size_t f) const { return ffr_stems_[f]; }

  /// The region index owning `net`.
  std::uint32_t ffr_of(NetId net) const { return ffr_of_[net]; }

  /// The stem net owning `net` (== `net` itself iff `net` is a stem).
  NetId stem_of(NetId net) const { return stem_of_[net]; }

  /// True when `net` is the stem of its own region.
  bool IsStem(NetId net) const { return stem_of_[net] == net; }

  /// Member nets of region `f`, ascending by id; the stem is the largest
  /// member (every internal net's unique consumer has a larger id).
  std::span<const NetId> ffr_members(std::size_t f) const {
    return {ffr_members_.data() + ffr_offset_[f],
            ffr_offset_[f + 1] - ffr_offset_[f]};
  }

  /// Content fingerprint of the frozen netlist: topology + cell functions
  /// (gate types, fanin wiring, primary input/output lists). Pin names are
  /// excluded — they never affect simulation results. Computed once at
  /// Freeze(); the result-store derives cache keys from it, so two
  /// identically built modules share cached fault-sim results across
  /// processes.
  const Hash128& fingerprint() const { return fingerprint_; }

  /// All DFF gate ids.
  const std::vector<NetId>& dffs() const { return dffs_; }

  /// Counts by type, for reporting.
  std::size_t CountOfType(CellType type) const;

 private:
  std::string name_;
  std::vector<Gate> gates_;
  std::vector<NetId> inputs_;
  std::vector<NetId> outputs_;
  std::vector<std::string> input_names_;
  std::vector<std::string> output_names_;
  std::vector<NetId> dffs_;

  bool frozen_ = false;
  std::vector<NetId> topo_;
  std::vector<std::uint32_t> fanout_offset_;  // gate_count() + 1
  std::vector<NetId> fanout_list_;            // CSR payload
  std::vector<std::uint32_t> level_;
  std::uint32_t max_level_ = 0;
  std::size_t cone_words_ = 0;
  std::vector<std::uint64_t> cone_;           // gate_count() * cone_words_
  std::vector<std::uint8_t> reaches_output_;  // cone mask nonzero
  std::vector<NetId> stem_of_;                // owning stem per net
  std::vector<std::uint32_t> ffr_of_;         // owning region index per net
  std::vector<NetId> ffr_stems_;              // stem per region, ascending
  std::vector<std::uint32_t> ffr_offset_;     // num_ffrs() + 1
  std::vector<NetId> ffr_members_;            // CSR payload, ascending
  Hash128 fingerprint_;
};

// --- Word-level construction helpers (used by the circuit builders) ---

/// A bundle of nets representing a little-endian binary word.
using Bus = std::vector<NetId>;

/// Adds `width` primary inputs named "<name>[i]".
Bus AddInputBus(Netlist& nl, const std::string& name, int width);

/// Marks each net of `bus` as output "<name>[i]".
void MarkOutputBus(Netlist& nl, const Bus& bus, const std::string& name);

}  // namespace gpustl::netlist
