// Bit-parallel (64 patterns per machine word) levelized logic simulation.
//
// This is the workhorse under both the gate-level "logic tracing" simulation
// of stage 2 and the good-machine half of the PPSFP fault simulator of
// stage 3. Patterns are simulated in blocks of 64: every net holds one
// 64-bit word whose bit j is the net's value under pattern (block*64 + j).
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"
#include "netlist/patterns.h"

namespace gpustl::netlist {

/// Evaluates a frozen netlist over pattern blocks.
class BitSimulator {
 public:
  explicit BitSimulator(const Netlist& nl);

  const Netlist& netlist() const { return *nl_; }

  /// Loads up to 64 patterns starting at `first` from `patterns` into the
  /// primary-input words (pattern k of the set maps to bit k-first).
  /// Returns the number of patterns loaded (0 if first >= size).
  int LoadBlock(const PatternSet& patterns, std::size_t first);

  /// Sets input net words directly (for single-vector use: all-ones /
  /// all-zeros words replicate one pattern across all 64 lanes).
  void SetInputWord(std::size_t input_index, std::uint64_t word);

  /// Evaluates all combinational gates in topological order.
  void Eval();

  /// Clocks all DFFs: q <- d. Call after Eval() for sequential stepping.
  void Step();

  /// Word value of any net after Eval().
  std::uint64_t Value(NetId net) const { return values_[net]; }

  /// Word value of primary output `o`.
  std::uint64_t OutputWord(std::size_t o) const {
    return values_[nl_->outputs()[o]];
  }

  /// Mutable access for fault injection machinery.
  std::vector<std::uint64_t>& values() { return values_; }
  const std::vector<std::uint64_t>& values() const { return values_; }

 private:
  const Netlist* nl_;
  std::vector<std::uint64_t> values_;
};

/// Convenience: simulate every pattern and return, per pattern, the packed
/// output vector (bit i = output i; requires <= 64 outputs... outputs wider
/// than 64 raise an error). Used by tests and the circuits' reference checks.
std::vector<std::uint64_t> SimulateAll(const Netlist& nl,
                                       const PatternSet& patterns);

/// Single-pattern evaluation helper: applies `input_bits` (bit i = input i,
/// must fit the input count) and returns packed outputs. For quick checks.
std::uint64_t SimulateOne(const Netlist& nl, const std::uint64_t* input_words);

}  // namespace gpustl::netlist
