// Test-pattern containers and the VCDE-style pattern report format.
//
// A PatternSet is the "test patterns report" of the paper's stage 2: the
// per-clock-cycle binary input vectors that the executing PTP applies to the
// target module, extracted by observing the module's I/O activity. Each
// pattern carries the clock-cycle stamp it was captured at, which is what
// lets stage 3 join fault detections back to instructions.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace gpustl::netlist {

/// An ordered set of equal-width binary input vectors with cc stamps.
class PatternSet {
 public:
  PatternSet() = default;
  explicit PatternSet(int width);

  int width() const { return width_; }
  std::size_t size() const { return ccs_.size(); }
  bool empty() const { return ccs_.empty(); }

  /// Words per pattern row.
  std::size_t words_per_pattern() const {
    return (static_cast<std::size_t>(width_) + 63) / 64;
  }

  /// Appends a pattern given as packed little-endian words (low bit of
  /// words[0] = input 0). Extra high bits must be zero.
  void Add(std::uint64_t cc, const std::uint64_t* words);

  /// Appends a pattern of up to 64 bits.
  void Add64(std::uint64_t cc, std::uint64_t bits);

  /// Clock-cycle stamp of pattern `p`.
  std::uint64_t cc(std::size_t p) const { return ccs_[p]; }

  /// Bit `i` of pattern `p`.
  bool Bit(std::size_t p, int i) const;

  /// Packed words of pattern `p`.
  const std::uint64_t* Row(std::size_t p) const;

  /// Returns a copy with patterns in reverse order (the paper applies
  /// SFU_IMM patterns in reverse during fault simulation).
  PatternSet Reversed() const;

  bool operator==(const PatternSet&) const = default;

 private:
  int width_ = 0;
  std::vector<std::uint64_t> ccs_;
  std::vector<std::uint64_t> bits_;  // size() * words_per_pattern()
};

/// Writes the VCDE-style text report:
///   $vcde <module> width <W> patterns <N>
///   <cc> <hex words, low word first>
///   ...
///   $end
void WriteVcde(std::ostream& os, const std::string& module,
               const PatternSet& patterns);

/// Parses a VCDE-style report. Throws ReportError on malformed input.
/// `module_out` receives the module name if non-null.
PatternSet ReadVcde(std::istream& is, std::string* module_out = nullptr);

}  // namespace gpustl::netlist
