#include "netlist/cell.h"

#include "common/error.h"

namespace gpustl::netlist {

int CellFaninCount(CellType type) {
  switch (type) {
    case CellType::kInput:
    case CellType::kConst0:
    case CellType::kConst1:
      return 0;
    case CellType::kBuf:
    case CellType::kInv:
    case CellType::kDff:
      return 1;
    case CellType::kAnd2:
    case CellType::kOr2:
    case CellType::kNand2:
    case CellType::kNor2:
    case CellType::kXor2:
    case CellType::kXnor2:
      return 2;
    case CellType::kAnd3:
    case CellType::kOr3:
    case CellType::kNand3:
    case CellType::kNor3:
    case CellType::kMux2:
    case CellType::kAoi21:
    case CellType::kOai21:
      return 3;
    case CellType::kAnd4:
    case CellType::kOr4:
    case CellType::kNand4:
    case CellType::kNor4:
    case CellType::kAoi22:
    case CellType::kOai22:
      return 4;
    case CellType::kCount:
      break;
  }
  throw Error("invalid cell type");
}

std::string_view CellName(CellType type) {
  switch (type) {
    case CellType::kInput: return "PI";
    case CellType::kConst0: return "TIELO";
    case CellType::kConst1: return "TIEHI";
    case CellType::kBuf: return "BUF_X1";
    case CellType::kInv: return "INV_X1";
    case CellType::kAnd2: return "AND2_X1";
    case CellType::kAnd3: return "AND3_X1";
    case CellType::kAnd4: return "AND4_X1";
    case CellType::kOr2: return "OR2_X1";
    case CellType::kOr3: return "OR3_X1";
    case CellType::kOr4: return "OR4_X1";
    case CellType::kNand2: return "NAND2_X1";
    case CellType::kNand3: return "NAND3_X1";
    case CellType::kNand4: return "NAND4_X1";
    case CellType::kNor2: return "NOR2_X1";
    case CellType::kNor3: return "NOR3_X1";
    case CellType::kNor4: return "NOR4_X1";
    case CellType::kXor2: return "XOR2_X1";
    case CellType::kXnor2: return "XNOR2_X1";
    case CellType::kMux2: return "MUX2_X1";
    case CellType::kAoi21: return "AOI21_X1";
    case CellType::kAoi22: return "AOI22_X1";
    case CellType::kOai21: return "OAI21_X1";
    case CellType::kOai22: return "OAI22_X1";
    case CellType::kDff: return "DFF_X1";
    case CellType::kCount: break;
  }
  throw Error("invalid cell type");
}

std::uint64_t EvalCell(CellType type, const std::uint64_t* in) {
  switch (type) {
    case CellType::kConst0: return 0;
    case CellType::kConst1: return ~0ull;
    case CellType::kBuf: return in[0];
    case CellType::kInv: return ~in[0];
    case CellType::kAnd2: return in[0] & in[1];
    case CellType::kAnd3: return in[0] & in[1] & in[2];
    case CellType::kAnd4: return in[0] & in[1] & in[2] & in[3];
    case CellType::kOr2: return in[0] | in[1];
    case CellType::kOr3: return in[0] | in[1] | in[2];
    case CellType::kOr4: return in[0] | in[1] | in[2] | in[3];
    case CellType::kNand2: return ~(in[0] & in[1]);
    case CellType::kNand3: return ~(in[0] & in[1] & in[2]);
    case CellType::kNand4: return ~(in[0] & in[1] & in[2] & in[3]);
    case CellType::kNor2: return ~(in[0] | in[1]);
    case CellType::kNor3: return ~(in[0] | in[1] | in[2]);
    case CellType::kNor4: return ~(in[0] | in[1] | in[2] | in[3]);
    case CellType::kXor2: return in[0] ^ in[1];
    case CellType::kXnor2: return ~(in[0] ^ in[1]);
    case CellType::kMux2: return (in[2] & in[1]) | (~in[2] & in[0]);
    case CellType::kAoi21: return ~((in[0] & in[1]) | in[2]);
    case CellType::kAoi22: return ~((in[0] & in[1]) | (in[2] & in[3]));
    case CellType::kOai21: return ~((in[0] | in[1]) & in[2]);
    case CellType::kOai22: return ~((in[0] | in[1]) & (in[2] | in[3]));
    case CellType::kInput:
    case CellType::kDff:
    case CellType::kCount:
      break;
  }
  throw Error("EvalCell: cell has no combinational function");
}

bool IsCombinational(CellType type) {
  return type != CellType::kInput && type != CellType::kDff &&
         type != CellType::kCount;
}

}  // namespace gpustl::netlist
