#include "netlist/patterns.h"

#include <istream>
#include <ostream>

#include "common/error.h"
#include "common/strutil.h"

namespace gpustl::netlist {

PatternSet::PatternSet(int width) : width_(width) {
  GPUSTL_ASSERT(width > 0, "pattern width must be positive");
}

void PatternSet::Add(std::uint64_t cc, const std::uint64_t* words) {
  ccs_.push_back(cc);
  const std::size_t wpp = words_per_pattern();
  bits_.insert(bits_.end(), words, words + wpp);
  // Mask padding bits of the last word so equality and hashing are exact.
  if (width_ % 64 != 0) {
    bits_.back() &= (1ull << (width_ % 64)) - 1;
  }
}

void PatternSet::Add64(std::uint64_t cc, std::uint64_t bits) {
  GPUSTL_ASSERT(width_ <= 64, "Add64 requires width <= 64");
  Add(cc, &bits);
}

bool PatternSet::Bit(std::size_t p, int i) const {
  GPUSTL_ASSERT(p < size() && i >= 0 && i < width_, "pattern bit out of range");
  const std::uint64_t word = bits_[p * words_per_pattern() +
                                   static_cast<std::size_t>(i) / 64];
  return (word >> (i % 64)) & 1;
}

const std::uint64_t* PatternSet::Row(std::size_t p) const {
  GPUSTL_ASSERT(p < size(), "pattern index out of range");
  return &bits_[p * words_per_pattern()];
}

PatternSet PatternSet::Reversed() const {
  PatternSet out(width_ == 0 ? 1 : width_);
  out.width_ = width_;
  out.ccs_.clear();
  out.bits_.clear();
  for (std::size_t p = size(); p-- > 0;) {
    out.Add(ccs_[p], Row(p));
  }
  return out;
}

void WriteVcde(std::ostream& os, const std::string& module,
               const PatternSet& patterns) {
  os << "$vcde " << module << " width " << patterns.width() << " patterns "
     << patterns.size() << "\n";
  const std::size_t wpp = patterns.words_per_pattern();
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    os << patterns.cc(p);
    const std::uint64_t* row = patterns.Row(p);
    for (std::size_t w = 0; w < wpp; ++w) {
      os << " " << ::gpustl::Format("%016llx", static_cast<unsigned long long>(row[w]));
    }
    os << "\n";
  }
  os << "$end\n";
}

PatternSet ReadVcde(std::istream& is, std::string* module_out) {
  std::string line;
  if (!std::getline(is, line)) throw ReportError("vcde: empty stream");
  const auto head = SplitWs(line);
  if (head.size() != 6 || head[0] != "$vcde" || head[2] != "width" ||
      head[4] != "patterns") {
    throw ReportError("vcde: malformed header '" + line + "'");
  }
  if (module_out) *module_out = std::string(head[1]);
  const auto width = ParseInt(head[3]);
  const auto count = ParseInt(head[5]);
  if (!width || *width <= 0 || !count || *count < 0) {
    throw ReportError("vcde: bad width/count");
  }

  PatternSet out(static_cast<int>(*width));
  const std::size_t wpp = out.words_per_pattern();
  std::vector<std::uint64_t> row(wpp);
  for (std::int64_t p = 0; p < *count; ++p) {
    if (!std::getline(is, line)) throw ReportError("vcde: truncated body");
    const auto toks = SplitWs(line);
    if (toks.size() != 1 + wpp) throw ReportError("vcde: bad row arity");
    const auto cc = ParseInt(toks[0]);
    if (!cc || *cc < 0) throw ReportError("vcde: bad cc stamp");
    for (std::size_t w = 0; w < wpp; ++w) {
      std::uint64_t value = 0;
      for (char c : toks[1 + w]) {
        int digit;
        if (c >= '0' && c <= '9') digit = c - '0';
        else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
        else throw ReportError("vcde: bad hex word");
        value = (value << 4) | static_cast<std::uint64_t>(digit);
      }
      row[w] = value;
    }
    out.Add(static_cast<std::uint64_t>(*cc), row.data());
  }
  if (!std::getline(is, line) || Trim(line) != "$end") {
    throw ReportError("vcde: missing $end");
  }
  return out;
}

}  // namespace gpustl::netlist
