#include "netlist/logicsim.h"

#include "common/error.h"

namespace gpustl::netlist {

BitSimulator::BitSimulator(const Netlist& nl) : nl_(&nl) {
  GPUSTL_ASSERT(nl.frozen(), "netlist must be frozen before simulation");
  values_.assign(nl.gate_count(), 0);
}

int BitSimulator::LoadBlock(const PatternSet& patterns, std::size_t first) {
  GPUSTL_ASSERT(patterns.width() == static_cast<int>(nl_->num_inputs()),
                "pattern width != netlist input count");
  if (first >= patterns.size()) return 0;
  const int count =
      static_cast<int>(std::min<std::size_t>(64, patterns.size() - first));

  // Transpose: bit i of pattern row -> bit (p-first) of input word i.
  const std::size_t n_inputs = nl_->num_inputs();
  for (std::size_t i = 0; i < n_inputs; ++i) values_[nl_->inputs()[i]] = 0;
  for (int p = 0; p < count; ++p) {
    const std::uint64_t* row = patterns.Row(first + static_cast<std::size_t>(p));
    for (std::size_t i = 0; i < n_inputs; ++i) {
      const std::uint64_t bit = (row[i / 64] >> (i % 64)) & 1;
      values_[nl_->inputs()[i]] |= bit << p;
    }
  }
  return count;
}

void BitSimulator::SetInputWord(std::size_t input_index, std::uint64_t word) {
  GPUSTL_ASSERT(input_index < nl_->num_inputs(), "input index out of range");
  values_[nl_->inputs()[input_index]] = word;
}

void BitSimulator::Eval() {
  const auto& gates = nl_->gates();
  std::uint64_t in[kMaxFanin];
  for (NetId id : nl_->topo_order()) {
    const Gate& g = gates[id];
    const int n = g.fanin_count();
    for (int i = 0; i < n; ++i) in[i] = values_[g.fanin[i]];
    values_[id] = EvalCell(g.type, in);
  }
}

void BitSimulator::Step() {
  // Two-phase update so DFF-to-DFF paths see pre-edge values.
  std::vector<std::uint64_t> next;
  next.reserve(nl_->dffs().size());
  for (NetId id : nl_->dffs()) next.push_back(values_[nl_->gate(id).fanin[0]]);
  std::size_t k = 0;
  for (NetId id : nl_->dffs()) values_[id] = next[k++];
}

std::vector<std::uint64_t> SimulateAll(const Netlist& nl,
                                       const PatternSet& patterns) {
  GPUSTL_ASSERT(nl.num_outputs() <= 64, "SimulateAll needs <= 64 outputs");
  std::vector<std::uint64_t> out;
  out.reserve(patterns.size());
  BitSimulator sim(nl);
  for (std::size_t first = 0; first < patterns.size(); first += 64) {
    const int count = sim.LoadBlock(patterns, first);
    sim.Eval();
    for (int p = 0; p < count; ++p) {
      std::uint64_t packed = 0;
      for (std::size_t o = 0; o < nl.num_outputs(); ++o) {
        packed |= ((sim.OutputWord(o) >> p) & 1) << o;
      }
      out.push_back(packed);
    }
  }
  return out;
}

std::uint64_t SimulateOne(const Netlist& nl, const std::uint64_t* input_words) {
  GPUSTL_ASSERT(nl.num_outputs() <= 64, "SimulateOne needs <= 64 outputs");
  BitSimulator sim(nl);
  for (std::size_t i = 0; i < nl.num_inputs(); ++i) {
    const std::uint64_t bit = (input_words[i / 64] >> (i % 64)) & 1;
    sim.SetInputWord(i, bit ? ~0ull : 0ull);
  }
  sim.Eval();
  std::uint64_t packed = 0;
  for (std::size_t o = 0; o < nl.num_outputs(); ++o) {
    packed |= (sim.OutputWord(o) & 1) << o;
  }
  return packed;
}

}  // namespace gpustl::netlist
