// Minimal VCD (Value Change Dump) writer for inspecting gate-level module
// activity in a waveform viewer. Used by debugging flows: sample the
// BitSimulator after each applied pattern (lane 0 of the 64-wide word) and
// the resulting file opens in GTKWave & friends.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "netlist/logicsim.h"
#include "netlist/netlist.h"

namespace gpustl::netlist {

/// Streams one VCD file. Construction writes the header; each Sample()
/// emits the value changes at the given timestamp. The referenced stream,
/// netlist and watch list must outlive the writer.
class VcdWriter {
 public:
  /// `watch` lists the nets to dump; their display names are taken from
  /// `names` (same arity) or synthesized as "n<id>".
  VcdWriter(std::ostream& os, const Netlist& nl, std::vector<NetId> watch,
            std::vector<std::string> names = {});

  /// Emits changes for pattern lane `lane` of the simulator's current
  /// values at `time` (monotonically increasing).
  void Sample(std::uint64_t time, const BitSimulator& sim, int lane = 0);

  /// Writes the final timestamp marker.
  void Finish(std::uint64_t time);

 private:
  std::ostream* os_;
  const Netlist* nl_;
  std::vector<NetId> watch_;
  std::vector<std::string> ids_;   // VCD short identifiers
  std::vector<int> last_;          // last emitted value (-1 = none)
};

/// Convenience: simulates `patterns` and dumps all primary inputs and
/// outputs of `nl` to a VCD string.
std::string DumpVcd(const Netlist& nl, const PatternSet& patterns);

}  // namespace gpustl::netlist
