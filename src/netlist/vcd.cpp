#include "netlist/vcd.h"

#include <ostream>
#include <sstream>

#include "common/error.h"

namespace gpustl::netlist {
namespace {

/// VCD identifier alphabet: printable ASCII '!'..'~'.
std::string VcdId(std::size_t index) {
  std::string id;
  do {
    id += static_cast<char>('!' + index % 94);
    index /= 94;
  } while (index != 0);
  return id;
}

}  // namespace

VcdWriter::VcdWriter(std::ostream& os, const Netlist& nl,
                     std::vector<NetId> watch, std::vector<std::string> names)
    : os_(&os), nl_(&nl), watch_(std::move(watch)) {
  GPUSTL_ASSERT(names.empty() || names.size() == watch_.size(),
                "vcd: names arity mismatch");
  last_.assign(watch_.size(), -1);
  ids_.reserve(watch_.size());

  (*os_) << "$date gpustl $end\n$version gpustl vcd 1 $end\n"
         << "$timescale 1ns $end\n"
         << "$scope module " << nl_->name() << " $end\n";
  for (std::size_t i = 0; i < watch_.size(); ++i) {
    GPUSTL_ASSERT(watch_[i] < nl_->gate_count(), "vcd: net out of range");
    ids_.push_back(VcdId(i));
    const std::string name =
        names.empty() ? "n" + std::to_string(watch_[i]) : names[i];
    (*os_) << "$var wire 1 " << ids_[i] << " " << name << " $end\n";
  }
  (*os_) << "$upscope $end\n$enddefinitions $end\n";
}

void VcdWriter::Sample(std::uint64_t time, const BitSimulator& sim, int lane) {
  GPUSTL_ASSERT(lane >= 0 && lane < 64, "vcd: lane out of range");
  bool stamped = false;
  for (std::size_t i = 0; i < watch_.size(); ++i) {
    const int value =
        static_cast<int>((sim.Value(watch_[i]) >> lane) & 1);
    if (value == last_[i]) continue;
    if (!stamped) {
      (*os_) << "#" << time << "\n";
      stamped = true;
    }
    (*os_) << value << ids_[i] << "\n";
    last_[i] = value;
  }
}

void VcdWriter::Finish(std::uint64_t time) { (*os_) << "#" << time << "\n"; }

std::string DumpVcd(const Netlist& nl, const PatternSet& patterns) {
  std::vector<NetId> watch;
  std::vector<std::string> names;
  for (std::size_t i = 0; i < nl.num_inputs(); ++i) {
    watch.push_back(nl.inputs()[i]);
    names.push_back(nl.input_name(i));
  }
  for (std::size_t o = 0; o < nl.num_outputs(); ++o) {
    watch.push_back(nl.outputs()[o]);
    names.push_back(nl.output_name(o));
  }

  std::ostringstream ss;
  VcdWriter writer(ss, nl, std::move(watch), std::move(names));
  BitSimulator sim(nl);
  std::uint64_t last_cc = 0;
  for (std::size_t base = 0; base < patterns.size(); base += 64) {
    const int count = sim.LoadBlock(patterns, base);
    sim.Eval();
    for (int p = 0; p < count; ++p) {
      last_cc = patterns.cc(base + static_cast<std::size_t>(p));
      writer.Sample(last_cc, sim, p);
    }
  }
  writer.Finish(last_cc + 1);
  return ss.str();
}

}  // namespace gpustl::netlist
