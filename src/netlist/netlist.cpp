#include "netlist/netlist.h"

#include <algorithm>

#include "common/error.h"

namespace gpustl::netlist {

NetId Netlist::AddInput(std::string name) {
  GPUSTL_ASSERT(!frozen_, "netlist is frozen");
  Gate g;
  g.type = CellType::kInput;
  gates_.push_back(g);
  const NetId id = static_cast<NetId>(gates_.size() - 1);
  inputs_.push_back(id);
  input_names_.push_back(std::move(name));
  return id;
}

NetId Netlist::AddGate(CellType type, std::initializer_list<NetId> fanin) {
  return AddGate(type, std::vector<NetId>(fanin));
}

NetId Netlist::AddGate(CellType type, const std::vector<NetId>& fanin) {
  GPUSTL_ASSERT(!frozen_, "netlist is frozen");
  if (static_cast<int>(fanin.size()) != CellFaninCount(type)) {
    throw NetlistError("gate " + std::string(CellName(type)) +
                       " fanin arity mismatch");
  }
  Gate g;
  g.type = type;
  for (std::size_t i = 0; i < fanin.size(); ++i) {
    if (fanin[i] >= gates_.size()) throw NetlistError("fanin net out of range");
    g.fanin[i] = fanin[i];
  }
  gates_.push_back(g);
  const NetId id = static_cast<NetId>(gates_.size() - 1);
  if (type == CellType::kDff) dffs_.push_back(id);
  return id;
}

void Netlist::MarkOutput(NetId net, std::string name) {
  GPUSTL_ASSERT(!frozen_, "netlist is frozen");
  if (net >= gates_.size()) throw NetlistError("output net out of range");
  outputs_.push_back(net);
  output_names_.push_back(std::move(name));
}

void Netlist::Freeze() {
  GPUSTL_ASSERT(!frozen_, "netlist already frozen");
  const std::size_t n = gates_.size();

  // Because AddGate only accepts already-existing nets, gate ids are already
  // a topological order of the combinational logic (DFF outputs act as
  // sources). We still verify and build levels + fanout lists.
  fanout_offset_.assign(n + 1, 0);
  level_.assign(n, 0);
  max_level_ = 0;
  topo_.clear();
  topo_.reserve(n);
  for (NetId id = 0; id < n; ++id) {
    const Gate& g = gates_[id];
    std::uint32_t lvl = 0;
    for (int i = 0; i < g.fanin_count(); ++i) {
      const NetId f = g.fanin[i];
      if (f >= id && g.type != CellType::kDff) {
        throw NetlistError("combinational cycle or forward reference");
      }
      if (f < n) {
        ++fanout_offset_[f + 1];
        if (g.type != CellType::kDff) lvl = std::max(lvl, level_[f] + 1);
      }
    }
    level_[id] = lvl;
    max_level_ = std::max(max_level_, lvl);
    if (IsCombinational(g.type)) topo_.push_back(id);
  }

  // CSR fanout: prefix-sum the degrees, then fill in gate-id order so every
  // per-net list stays ascending (the order the old vector-of-vectors had).
  for (std::size_t i = 1; i <= n; ++i) fanout_offset_[i] += fanout_offset_[i - 1];
  fanout_list_.assign(fanout_offset_[n], 0);
  std::vector<std::uint32_t> cursor(fanout_offset_.begin(),
                                    fanout_offset_.end() - 1);
  for (NetId id = 0; id < n; ++id) {
    const Gate& g = gates_[id];
    for (int i = 0; i < g.fanin_count(); ++i) {
      const NetId f = g.fanin[i];
      if (f < n) fanout_list_[cursor[f]++] = id;
    }
  }

  // Output cones, swept in descending id order (every combinational
  // consumer has a larger id than its fanins, so a net's cone is complete
  // before it is pushed into the fanins). DFFs are a sequential boundary.
  cone_words_ = (outputs_.size() + 63) / 64;
  cone_.assign(n * cone_words_, 0);
  reaches_output_.assign(n, 0);
  for (std::size_t k = 0; k < outputs_.size(); ++k) {
    cone_[outputs_[k] * cone_words_ + k / 64] |= 1ull << (k % 64);
  }
  for (NetId id = static_cast<NetId>(n); id-- > 0;) {
    const Gate& g = gates_[id];
    if (g.type == CellType::kDff) continue;
    const std::uint64_t* mine = cone_.data() + id * cone_words_;
    for (int i = 0; i < g.fanin_count(); ++i) {
      std::uint64_t* dst = cone_.data() + g.fanin[i] * cone_words_;
      for (std::size_t w = 0; w < cone_words_; ++w) dst[w] |= mine[w];
    }
  }
  for (NetId id = 0; id < n; ++id) {
    for (std::size_t w = 0; w < cone_words_; ++w) {
      if (cone_[id * cone_words_ + w] != 0) {
        reaches_output_[id] = 1;
        break;
      }
    }
  }

  // Fanout-free regions. Stem rule: fanout size != 1, primary output, or the
  // single consumer is a DFF (a sequential boundary, like the cones above).
  // Descending sweep: a non-stem net's owner is its unique consumer's owner,
  // and that consumer has a larger id, so it is already resolved. Derived
  // data only — the fingerprint below is deliberately unaffected.
  std::vector<std::uint8_t> is_output(n, 0);
  for (const NetId id : outputs_) is_output[id] = 1;
  stem_of_.assign(n, 0);
  for (NetId id = static_cast<NetId>(n); id-- > 0;) {
    const std::span<const NetId> fo = fanout(id);
    const bool stem = fo.size() != 1 || is_output[id] ||
                      gates_[fo[0]].type == CellType::kDff;
    stem_of_[id] = stem ? id : stem_of_[fo[0]];
  }

  // Region CSR: stems ascend by net id, members ascend within each region.
  ffr_stems_.clear();
  ffr_of_.assign(n, 0);
  for (NetId id = 0; id < n; ++id) {
    if (stem_of_[id] == id) {
      ffr_of_[id] = static_cast<std::uint32_t>(ffr_stems_.size());
      ffr_stems_.push_back(id);
    }
  }
  for (NetId id = 0; id < n; ++id) ffr_of_[id] = ffr_of_[stem_of_[id]];
  ffr_offset_.assign(ffr_stems_.size() + 1, 0);
  for (NetId id = 0; id < n; ++id) ++ffr_offset_[ffr_of_[id] + 1];
  for (std::size_t f = 1; f <= ffr_stems_.size(); ++f) {
    ffr_offset_[f] += ffr_offset_[f - 1];
  }
  ffr_members_.assign(n, 0);
  std::vector<std::uint32_t> ffr_cursor(ffr_offset_.begin(),
                                        ffr_offset_.end() - 1);
  for (NetId id = 0; id < n; ++id) {
    ffr_members_[ffr_cursor[ffr_of_[id]]++] = id;
  }

  // Content fingerprint: every bit of structure that determines simulation
  // behaviour, nothing that doesn't (names are skipped). The field order is
  // part of the store's key-derivation contract (docs/FORMATS.md).
  Hasher128 hasher;
  hasher.AddString("gpustl-netlist-v1");
  hasher.AddU64(n);
  for (NetId id = 0; id < n; ++id) {
    const Gate& g = gates_[id];
    hasher.AddU32(static_cast<std::uint32_t>(g.type));
    for (int i = 0; i < g.fanin_count(); ++i) hasher.AddU32(g.fanin[i]);
  }
  hasher.AddU64(inputs_.size());
  for (const NetId id : inputs_) hasher.AddU32(id);
  hasher.AddU64(outputs_.size());
  for (const NetId id : outputs_) hasher.AddU32(id);
  fingerprint_ = hasher.Finish();

  frozen_ = true;
}

std::size_t Netlist::CountOfType(CellType type) const {
  return static_cast<std::size_t>(
      std::count_if(gates_.begin(), gates_.end(),
                    [&](const Gate& g) { return g.type == type; }));
}

Bus AddInputBus(Netlist& nl, const std::string& name, int width) {
  Bus bus;
  bus.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    bus.push_back(nl.AddInput(name + "[" + std::to_string(i) + "]"));
  }
  return bus;
}

void MarkOutputBus(Netlist& nl, const Bus& bus, const std::string& name) {
  for (std::size_t i = 0; i < bus.size(); ++i) {
    nl.MarkOutput(bus[i], name + "[" + std::to_string(i) + "]");
  }
}

}  // namespace gpustl::netlist
