// Standard-cell library for the gate-level modules.
//
// Mirrors the combinational subset of the Nangate 15 nm OpenCell library the
// paper synthesized with: inverters/buffers, 2-4 input NAND/NOR/AND/OR, XOR/
// XNOR, 2:1 mux, AOI/OAI complex gates, plus DFF for sequential modules and
// constant/input pseudo-cells used by the netlist representation.
#pragma once

#include <cstdint>
#include <string_view>

namespace gpustl::netlist {

enum class CellType : std::uint8_t {
  kInput,   // primary input pseudo-cell (no fanin)
  kConst0,  // constant 0 driver
  kConst1,  // constant 1 driver
  kBuf,
  kInv,
  kAnd2,
  kAnd3,
  kAnd4,
  kOr2,
  kOr3,
  kOr4,
  kNand2,
  kNand3,
  kNand4,
  kNor2,
  kNor3,
  kNor4,
  kXor2,
  kXnor2,
  kMux2,   // fanin: {a, b, sel}; out = sel ? b : a
  kAoi21,  // !((a & b) | c)
  kAoi22,  // !((a & b) | (c & d))
  kOai21,  // !((a | b) & c)
  kOai22,  // !((a | b) & (c | d))
  kDff,    // fanin: {d}; q updates on Step()

  kCount,
};

/// Number of fanin pins for a cell type.
int CellFaninCount(CellType type);

/// Library cell name ("NAND2_X1"-style, Nangate naming convention).
std::string_view CellName(CellType type);

/// Bit-parallel evaluation: each input word carries 64 patterns.
/// `in` must have CellFaninCount(type) entries. Not valid for kInput/kDff.
std::uint64_t EvalCell(CellType type, const std::uint64_t* in);

/// True for types that drive their output combinationally from fanins.
bool IsCombinational(CellType type);

}  // namespace gpustl::netlist
