file(REMOVE_RECURSE
  "CMakeFiles/gpustlc.dir/gpustlc.cpp.o"
  "CMakeFiles/gpustlc.dir/gpustlc.cpp.o.d"
  "gpustlc"
  "gpustlc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpustlc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
