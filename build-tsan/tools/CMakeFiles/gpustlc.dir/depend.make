# Empty dependencies file for gpustlc.
# This may be replaced when dependencies are built.
