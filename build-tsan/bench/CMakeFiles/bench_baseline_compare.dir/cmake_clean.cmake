file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_compare.dir/bench_baseline_compare.cpp.o"
  "CMakeFiles/bench_baseline_compare.dir/bench_baseline_compare.cpp.o.d"
  "bench_baseline_compare"
  "bench_baseline_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
