# Empty compiler generated dependencies file for bench_stl_summary.
# This may be replaced when dependencies are built.
