file(REMOVE_RECURSE
  "CMakeFiles/bench_stl_summary.dir/bench_stl_summary.cpp.o"
  "CMakeFiles/bench_stl_summary.dir/bench_stl_summary.cpp.o.d"
  "bench_stl_summary"
  "bench_stl_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stl_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
