file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sm.dir/bench_ablation_sm.cpp.o"
  "CMakeFiles/bench_ablation_sm.dir/bench_ablation_sm.cpp.o.d"
  "bench_ablation_sm"
  "bench_ablation_sm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
