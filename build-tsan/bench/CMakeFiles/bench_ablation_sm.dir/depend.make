# Empty dependencies file for bench_ablation_sm.
# This may be replaced when dependencies are built.
