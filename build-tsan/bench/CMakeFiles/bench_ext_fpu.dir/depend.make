# Empty dependencies file for bench_ext_fpu.
# This may be replaced when dependencies are built.
