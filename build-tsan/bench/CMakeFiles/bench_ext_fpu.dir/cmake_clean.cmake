file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_fpu.dir/bench_ext_fpu.cpp.o"
  "CMakeFiles/bench_ext_fpu.dir/bench_ext_fpu.cpp.o.d"
  "bench_ext_fpu"
  "bench_ext_fpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_fpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
