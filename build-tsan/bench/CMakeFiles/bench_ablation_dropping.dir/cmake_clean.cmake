file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dropping.dir/bench_ablation_dropping.cpp.o"
  "CMakeFiles/bench_ablation_dropping.dir/bench_ablation_dropping.cpp.o.d"
  "bench_ablation_dropping"
  "bench_ablation_dropping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dropping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
