# Empty compiler generated dependencies file for bench_ablation_dropping.
# This may be replaced when dependencies are built.
