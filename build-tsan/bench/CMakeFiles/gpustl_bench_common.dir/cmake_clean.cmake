file(REMOVE_RECURSE
  "CMakeFiles/gpustl_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/gpustl_bench_common.dir/bench_common.cpp.o.d"
  "libgpustl_bench_common.a"
  "libgpustl_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpustl_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
