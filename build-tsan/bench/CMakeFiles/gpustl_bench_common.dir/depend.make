# Empty dependencies file for gpustl_bench_common.
# This may be replaced when dependencies are built.
