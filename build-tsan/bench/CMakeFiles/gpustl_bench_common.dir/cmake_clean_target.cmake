file(REMOVE_RECURSE
  "libgpustl_bench_common.a"
)
