# Empty compiler generated dependencies file for bench_ext_transition.
# This may be replaced when dependencies are built.
