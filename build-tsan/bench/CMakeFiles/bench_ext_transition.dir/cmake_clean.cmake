file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_transition.dir/bench_ext_transition.cpp.o"
  "CMakeFiles/bench_ext_transition.dir/bench_ext_transition.cpp.o.d"
  "bench_ext_transition"
  "bench_ext_transition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_transition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
