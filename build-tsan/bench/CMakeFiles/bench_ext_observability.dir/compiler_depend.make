# Empty compiler generated dependencies file for bench_ext_observability.
# This may be replaced when dependencies are built.
