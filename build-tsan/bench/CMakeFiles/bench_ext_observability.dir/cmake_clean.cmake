file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_observability.dir/bench_ext_observability.cpp.o"
  "CMakeFiles/bench_ext_observability.dir/bench_ext_observability.cpp.o.d"
  "bench_ext_observability"
  "bench_ext_observability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_observability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
