# Empty dependencies file for test_fp32.
# This may be replaced when dependencies are built.
