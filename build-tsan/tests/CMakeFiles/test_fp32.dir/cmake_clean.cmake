file(REMOVE_RECURSE
  "CMakeFiles/test_fp32.dir/test_fp32.cpp.o"
  "CMakeFiles/test_fp32.dir/test_fp32.cpp.o.d"
  "test_fp32"
  "test_fp32.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fp32.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
