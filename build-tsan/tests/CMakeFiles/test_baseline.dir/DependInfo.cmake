
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baseline.cpp" "tests/CMakeFiles/test_baseline.dir/test_baseline.cpp.o" "gcc" "tests/CMakeFiles/test_baseline.dir/test_baseline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/inject/CMakeFiles/gpustl_inject.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/gpustl_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/isa/CMakeFiles/gpustl_isa.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/netlist/CMakeFiles/gpustl_netlist.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fault/CMakeFiles/gpustl_fault.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/circuits/CMakeFiles/gpustl_circuits.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/atpg/CMakeFiles/gpustl_atpg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/gpu/CMakeFiles/gpustl_gpu.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trace/CMakeFiles/gpustl_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/stl/CMakeFiles/gpustl_stl.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/compact/CMakeFiles/gpustl_compact.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/baseline/CMakeFiles/gpustl_baseline.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
