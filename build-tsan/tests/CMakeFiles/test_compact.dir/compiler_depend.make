# Empty compiler generated dependencies file for test_compact.
# This may be replaced when dependencies are built.
