file(REMOVE_RECURSE
  "CMakeFiles/test_compact.dir/test_compact.cpp.o"
  "CMakeFiles/test_compact.dir/test_compact.cpp.o.d"
  "test_compact"
  "test_compact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
