# Empty compiler generated dependencies file for test_multisim.
# This may be replaced when dependencies are built.
