file(REMOVE_RECURSE
  "CMakeFiles/test_multisim.dir/test_multisim.cpp.o"
  "CMakeFiles/test_multisim.dir/test_multisim.cpp.o.d"
  "test_multisim"
  "test_multisim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
