file(REMOVE_RECURSE
  "CMakeFiles/test_stl.dir/test_stl.cpp.o"
  "CMakeFiles/test_stl.dir/test_stl.cpp.o.d"
  "test_stl"
  "test_stl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
