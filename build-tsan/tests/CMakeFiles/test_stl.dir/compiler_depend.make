# Empty compiler generated dependencies file for test_stl.
# This may be replaced when dependencies are built.
