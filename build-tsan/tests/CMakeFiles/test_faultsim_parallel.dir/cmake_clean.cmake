file(REMOVE_RECURSE
  "CMakeFiles/test_faultsim_parallel.dir/test_faultsim_parallel.cpp.o"
  "CMakeFiles/test_faultsim_parallel.dir/test_faultsim_parallel.cpp.o.d"
  "test_faultsim_parallel"
  "test_faultsim_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_faultsim_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
