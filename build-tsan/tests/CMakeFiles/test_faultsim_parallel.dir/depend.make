# Empty dependencies file for test_faultsim_parallel.
# This may be replaced when dependencies are built.
