file(REMOVE_RECURSE
  "libgpustl_compact.a"
)
