# Empty compiler generated dependencies file for gpustl_compact.
# This may be replaced when dependencies are built.
