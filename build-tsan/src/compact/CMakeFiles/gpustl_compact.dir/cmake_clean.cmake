file(REMOVE_RECURSE
  "CMakeFiles/gpustl_compact.dir/compactor.cpp.o"
  "CMakeFiles/gpustl_compact.dir/compactor.cpp.o.d"
  "CMakeFiles/gpustl_compact.dir/report.cpp.o"
  "CMakeFiles/gpustl_compact.dir/report.cpp.o.d"
  "CMakeFiles/gpustl_compact.dir/stl_campaign.cpp.o"
  "CMakeFiles/gpustl_compact.dir/stl_campaign.cpp.o.d"
  "libgpustl_compact.a"
  "libgpustl_compact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpustl_compact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
