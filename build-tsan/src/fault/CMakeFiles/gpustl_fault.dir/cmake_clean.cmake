file(REMOVE_RECURSE
  "CMakeFiles/gpustl_fault.dir/fault.cpp.o"
  "CMakeFiles/gpustl_fault.dir/fault.cpp.o.d"
  "CMakeFiles/gpustl_fault.dir/faultlist_io.cpp.o"
  "CMakeFiles/gpustl_fault.dir/faultlist_io.cpp.o.d"
  "CMakeFiles/gpustl_fault.dir/faultsim.cpp.o"
  "CMakeFiles/gpustl_fault.dir/faultsim.cpp.o.d"
  "CMakeFiles/gpustl_fault.dir/parallel.cpp.o"
  "CMakeFiles/gpustl_fault.dir/parallel.cpp.o.d"
  "CMakeFiles/gpustl_fault.dir/transition.cpp.o"
  "CMakeFiles/gpustl_fault.dir/transition.cpp.o.d"
  "libgpustl_fault.a"
  "libgpustl_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpustl_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
