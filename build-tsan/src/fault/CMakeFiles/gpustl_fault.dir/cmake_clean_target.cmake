file(REMOVE_RECURSE
  "libgpustl_fault.a"
)
