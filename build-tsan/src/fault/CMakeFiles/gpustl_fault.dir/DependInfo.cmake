
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fault/fault.cpp" "src/fault/CMakeFiles/gpustl_fault.dir/fault.cpp.o" "gcc" "src/fault/CMakeFiles/gpustl_fault.dir/fault.cpp.o.d"
  "/root/repo/src/fault/faultlist_io.cpp" "src/fault/CMakeFiles/gpustl_fault.dir/faultlist_io.cpp.o" "gcc" "src/fault/CMakeFiles/gpustl_fault.dir/faultlist_io.cpp.o.d"
  "/root/repo/src/fault/faultsim.cpp" "src/fault/CMakeFiles/gpustl_fault.dir/faultsim.cpp.o" "gcc" "src/fault/CMakeFiles/gpustl_fault.dir/faultsim.cpp.o.d"
  "/root/repo/src/fault/parallel.cpp" "src/fault/CMakeFiles/gpustl_fault.dir/parallel.cpp.o" "gcc" "src/fault/CMakeFiles/gpustl_fault.dir/parallel.cpp.o.d"
  "/root/repo/src/fault/transition.cpp" "src/fault/CMakeFiles/gpustl_fault.dir/transition.cpp.o" "gcc" "src/fault/CMakeFiles/gpustl_fault.dir/transition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/netlist/CMakeFiles/gpustl_netlist.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/gpustl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
