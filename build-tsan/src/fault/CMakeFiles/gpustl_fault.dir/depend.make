# Empty dependencies file for gpustl_fault.
# This may be replaced when dependencies are built.
