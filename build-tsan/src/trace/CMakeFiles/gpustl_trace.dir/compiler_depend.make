# Empty compiler generated dependencies file for gpustl_trace.
# This may be replaced when dependencies are built.
