file(REMOVE_RECURSE
  "CMakeFiles/gpustl_trace.dir/histogram.cpp.o"
  "CMakeFiles/gpustl_trace.dir/histogram.cpp.o.d"
  "CMakeFiles/gpustl_trace.dir/trace.cpp.o"
  "CMakeFiles/gpustl_trace.dir/trace.cpp.o.d"
  "libgpustl_trace.a"
  "libgpustl_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpustl_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
