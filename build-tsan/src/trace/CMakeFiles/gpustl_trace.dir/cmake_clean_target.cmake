file(REMOVE_RECURSE
  "libgpustl_trace.a"
)
