# Empty dependencies file for gpustl_stl.
# This may be replaced when dependencies are built.
