file(REMOVE_RECURSE
  "libgpustl_stl.a"
)
