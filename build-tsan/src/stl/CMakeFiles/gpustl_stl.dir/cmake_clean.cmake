file(REMOVE_RECURSE
  "CMakeFiles/gpustl_stl.dir/atpg_convert.cpp.o"
  "CMakeFiles/gpustl_stl.dir/atpg_convert.cpp.o.d"
  "CMakeFiles/gpustl_stl.dir/generators.cpp.o"
  "CMakeFiles/gpustl_stl.dir/generators.cpp.o.d"
  "libgpustl_stl.a"
  "libgpustl_stl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpustl_stl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
