file(REMOVE_RECURSE
  "CMakeFiles/gpustl_circuits.dir/blocks.cpp.o"
  "CMakeFiles/gpustl_circuits.dir/blocks.cpp.o.d"
  "CMakeFiles/gpustl_circuits.dir/decoder_unit.cpp.o"
  "CMakeFiles/gpustl_circuits.dir/decoder_unit.cpp.o.d"
  "CMakeFiles/gpustl_circuits.dir/fp32.cpp.o"
  "CMakeFiles/gpustl_circuits.dir/fp32.cpp.o.d"
  "CMakeFiles/gpustl_circuits.dir/reference.cpp.o"
  "CMakeFiles/gpustl_circuits.dir/reference.cpp.o.d"
  "CMakeFiles/gpustl_circuits.dir/sfu.cpp.o"
  "CMakeFiles/gpustl_circuits.dir/sfu.cpp.o.d"
  "CMakeFiles/gpustl_circuits.dir/sp_core.cpp.o"
  "CMakeFiles/gpustl_circuits.dir/sp_core.cpp.o.d"
  "libgpustl_circuits.a"
  "libgpustl_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpustl_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
