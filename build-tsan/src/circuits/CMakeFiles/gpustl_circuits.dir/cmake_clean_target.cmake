file(REMOVE_RECURSE
  "libgpustl_circuits.a"
)
