# Empty compiler generated dependencies file for gpustl_circuits.
# This may be replaced when dependencies are built.
