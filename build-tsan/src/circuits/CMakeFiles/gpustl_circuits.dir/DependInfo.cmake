
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuits/blocks.cpp" "src/circuits/CMakeFiles/gpustl_circuits.dir/blocks.cpp.o" "gcc" "src/circuits/CMakeFiles/gpustl_circuits.dir/blocks.cpp.o.d"
  "/root/repo/src/circuits/decoder_unit.cpp" "src/circuits/CMakeFiles/gpustl_circuits.dir/decoder_unit.cpp.o" "gcc" "src/circuits/CMakeFiles/gpustl_circuits.dir/decoder_unit.cpp.o.d"
  "/root/repo/src/circuits/fp32.cpp" "src/circuits/CMakeFiles/gpustl_circuits.dir/fp32.cpp.o" "gcc" "src/circuits/CMakeFiles/gpustl_circuits.dir/fp32.cpp.o.d"
  "/root/repo/src/circuits/reference.cpp" "src/circuits/CMakeFiles/gpustl_circuits.dir/reference.cpp.o" "gcc" "src/circuits/CMakeFiles/gpustl_circuits.dir/reference.cpp.o.d"
  "/root/repo/src/circuits/sfu.cpp" "src/circuits/CMakeFiles/gpustl_circuits.dir/sfu.cpp.o" "gcc" "src/circuits/CMakeFiles/gpustl_circuits.dir/sfu.cpp.o.d"
  "/root/repo/src/circuits/sp_core.cpp" "src/circuits/CMakeFiles/gpustl_circuits.dir/sp_core.cpp.o" "gcc" "src/circuits/CMakeFiles/gpustl_circuits.dir/sp_core.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/netlist/CMakeFiles/gpustl_netlist.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/isa/CMakeFiles/gpustl_isa.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/gpustl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
