file(REMOVE_RECURSE
  "CMakeFiles/gpustl_common.dir/bitops.cpp.o"
  "CMakeFiles/gpustl_common.dir/bitops.cpp.o.d"
  "CMakeFiles/gpustl_common.dir/rng.cpp.o"
  "CMakeFiles/gpustl_common.dir/rng.cpp.o.d"
  "CMakeFiles/gpustl_common.dir/strutil.cpp.o"
  "CMakeFiles/gpustl_common.dir/strutil.cpp.o.d"
  "CMakeFiles/gpustl_common.dir/table.cpp.o"
  "CMakeFiles/gpustl_common.dir/table.cpp.o.d"
  "libgpustl_common.a"
  "libgpustl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpustl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
