file(REMOVE_RECURSE
  "libgpustl_common.a"
)
