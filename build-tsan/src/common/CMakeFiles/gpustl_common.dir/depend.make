# Empty dependencies file for gpustl_common.
# This may be replaced when dependencies are built.
