file(REMOVE_RECURSE
  "libgpustl_baseline.a"
)
