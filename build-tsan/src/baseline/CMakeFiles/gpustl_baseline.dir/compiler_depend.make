# Empty compiler generated dependencies file for gpustl_baseline.
# This may be replaced when dependencies are built.
