file(REMOVE_RECURSE
  "CMakeFiles/gpustl_baseline.dir/iterative.cpp.o"
  "CMakeFiles/gpustl_baseline.dir/iterative.cpp.o.d"
  "libgpustl_baseline.a"
  "libgpustl_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpustl_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
