file(REMOVE_RECURSE
  "CMakeFiles/gpustl_gpu.dir/gpu.cpp.o"
  "CMakeFiles/gpustl_gpu.dir/gpu.cpp.o.d"
  "CMakeFiles/gpustl_gpu.dir/memory.cpp.o"
  "CMakeFiles/gpustl_gpu.dir/memory.cpp.o.d"
  "CMakeFiles/gpustl_gpu.dir/sm.cpp.o"
  "CMakeFiles/gpustl_gpu.dir/sm.cpp.o.d"
  "libgpustl_gpu.a"
  "libgpustl_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpustl_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
