# Empty dependencies file for gpustl_gpu.
# This may be replaced when dependencies are built.
