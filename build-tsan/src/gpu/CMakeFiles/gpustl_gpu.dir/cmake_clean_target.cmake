file(REMOVE_RECURSE
  "libgpustl_gpu.a"
)
