# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-tsan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("isa")
subdirs("netlist")
subdirs("fault")
subdirs("circuits")
subdirs("atpg")
subdirs("gpu")
subdirs("trace")
subdirs("stl")
subdirs("compact")
subdirs("inject")
subdirs("baseline")
