file(REMOVE_RECURSE
  "libgpustl_inject.a"
)
