# Empty dependencies file for gpustl_inject.
# This may be replaced when dependencies are built.
