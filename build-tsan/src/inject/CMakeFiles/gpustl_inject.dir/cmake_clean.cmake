file(REMOVE_RECURSE
  "CMakeFiles/gpustl_inject.dir/inject.cpp.o"
  "CMakeFiles/gpustl_inject.dir/inject.cpp.o.d"
  "libgpustl_inject.a"
  "libgpustl_inject.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpustl_inject.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
