# Empty dependencies file for gpustl_netlist.
# This may be replaced when dependencies are built.
