file(REMOVE_RECURSE
  "libgpustl_netlist.a"
)
