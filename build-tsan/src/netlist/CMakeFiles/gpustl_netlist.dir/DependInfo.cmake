
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/cell.cpp" "src/netlist/CMakeFiles/gpustl_netlist.dir/cell.cpp.o" "gcc" "src/netlist/CMakeFiles/gpustl_netlist.dir/cell.cpp.o.d"
  "/root/repo/src/netlist/logicsim.cpp" "src/netlist/CMakeFiles/gpustl_netlist.dir/logicsim.cpp.o" "gcc" "src/netlist/CMakeFiles/gpustl_netlist.dir/logicsim.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/netlist/CMakeFiles/gpustl_netlist.dir/netlist.cpp.o" "gcc" "src/netlist/CMakeFiles/gpustl_netlist.dir/netlist.cpp.o.d"
  "/root/repo/src/netlist/patterns.cpp" "src/netlist/CMakeFiles/gpustl_netlist.dir/patterns.cpp.o" "gcc" "src/netlist/CMakeFiles/gpustl_netlist.dir/patterns.cpp.o.d"
  "/root/repo/src/netlist/vcd.cpp" "src/netlist/CMakeFiles/gpustl_netlist.dir/vcd.cpp.o" "gcc" "src/netlist/CMakeFiles/gpustl_netlist.dir/vcd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/gpustl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
