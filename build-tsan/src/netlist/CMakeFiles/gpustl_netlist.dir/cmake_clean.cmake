file(REMOVE_RECURSE
  "CMakeFiles/gpustl_netlist.dir/cell.cpp.o"
  "CMakeFiles/gpustl_netlist.dir/cell.cpp.o.d"
  "CMakeFiles/gpustl_netlist.dir/logicsim.cpp.o"
  "CMakeFiles/gpustl_netlist.dir/logicsim.cpp.o.d"
  "CMakeFiles/gpustl_netlist.dir/netlist.cpp.o"
  "CMakeFiles/gpustl_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/gpustl_netlist.dir/patterns.cpp.o"
  "CMakeFiles/gpustl_netlist.dir/patterns.cpp.o.d"
  "CMakeFiles/gpustl_netlist.dir/vcd.cpp.o"
  "CMakeFiles/gpustl_netlist.dir/vcd.cpp.o.d"
  "libgpustl_netlist.a"
  "libgpustl_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpustl_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
