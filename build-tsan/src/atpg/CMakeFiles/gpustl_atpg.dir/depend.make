# Empty dependencies file for gpustl_atpg.
# This may be replaced when dependencies are built.
