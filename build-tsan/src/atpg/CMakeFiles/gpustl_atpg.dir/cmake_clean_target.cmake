file(REMOVE_RECURSE
  "libgpustl_atpg.a"
)
