file(REMOVE_RECURSE
  "CMakeFiles/gpustl_atpg.dir/podem.cpp.o"
  "CMakeFiles/gpustl_atpg.dir/podem.cpp.o.d"
  "libgpustl_atpg.a"
  "libgpustl_atpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpustl_atpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
