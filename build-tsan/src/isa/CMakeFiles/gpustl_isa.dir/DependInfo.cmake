
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/assembler.cpp" "src/isa/CMakeFiles/gpustl_isa.dir/assembler.cpp.o" "gcc" "src/isa/CMakeFiles/gpustl_isa.dir/assembler.cpp.o.d"
  "/root/repo/src/isa/binary.cpp" "src/isa/CMakeFiles/gpustl_isa.dir/binary.cpp.o" "gcc" "src/isa/CMakeFiles/gpustl_isa.dir/binary.cpp.o.d"
  "/root/repo/src/isa/cfg.cpp" "src/isa/CMakeFiles/gpustl_isa.dir/cfg.cpp.o" "gcc" "src/isa/CMakeFiles/gpustl_isa.dir/cfg.cpp.o.d"
  "/root/repo/src/isa/disasm.cpp" "src/isa/CMakeFiles/gpustl_isa.dir/disasm.cpp.o" "gcc" "src/isa/CMakeFiles/gpustl_isa.dir/disasm.cpp.o.d"
  "/root/repo/src/isa/instruction.cpp" "src/isa/CMakeFiles/gpustl_isa.dir/instruction.cpp.o" "gcc" "src/isa/CMakeFiles/gpustl_isa.dir/instruction.cpp.o.d"
  "/root/repo/src/isa/lint.cpp" "src/isa/CMakeFiles/gpustl_isa.dir/lint.cpp.o" "gcc" "src/isa/CMakeFiles/gpustl_isa.dir/lint.cpp.o.d"
  "/root/repo/src/isa/opcode.cpp" "src/isa/CMakeFiles/gpustl_isa.dir/opcode.cpp.o" "gcc" "src/isa/CMakeFiles/gpustl_isa.dir/opcode.cpp.o.d"
  "/root/repo/src/isa/program.cpp" "src/isa/CMakeFiles/gpustl_isa.dir/program.cpp.o" "gcc" "src/isa/CMakeFiles/gpustl_isa.dir/program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/gpustl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
