file(REMOVE_RECURSE
  "libgpustl_isa.a"
)
