file(REMOVE_RECURSE
  "CMakeFiles/gpustl_isa.dir/assembler.cpp.o"
  "CMakeFiles/gpustl_isa.dir/assembler.cpp.o.d"
  "CMakeFiles/gpustl_isa.dir/binary.cpp.o"
  "CMakeFiles/gpustl_isa.dir/binary.cpp.o.d"
  "CMakeFiles/gpustl_isa.dir/cfg.cpp.o"
  "CMakeFiles/gpustl_isa.dir/cfg.cpp.o.d"
  "CMakeFiles/gpustl_isa.dir/disasm.cpp.o"
  "CMakeFiles/gpustl_isa.dir/disasm.cpp.o.d"
  "CMakeFiles/gpustl_isa.dir/instruction.cpp.o"
  "CMakeFiles/gpustl_isa.dir/instruction.cpp.o.d"
  "CMakeFiles/gpustl_isa.dir/lint.cpp.o"
  "CMakeFiles/gpustl_isa.dir/lint.cpp.o.d"
  "CMakeFiles/gpustl_isa.dir/opcode.cpp.o"
  "CMakeFiles/gpustl_isa.dir/opcode.cpp.o.d"
  "CMakeFiles/gpustl_isa.dir/program.cpp.o"
  "CMakeFiles/gpustl_isa.dir/program.cpp.o.d"
  "libgpustl_isa.a"
  "libgpustl_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpustl_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
