# Empty compiler generated dependencies file for gpustl_isa.
# This may be replaced when dependencies are built.
