file(REMOVE_RECURSE
  "CMakeFiles/du_compaction.dir/du_compaction.cpp.o"
  "CMakeFiles/du_compaction.dir/du_compaction.cpp.o.d"
  "du_compaction"
  "du_compaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/du_compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
