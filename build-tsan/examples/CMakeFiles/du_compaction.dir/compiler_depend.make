# Empty compiler generated dependencies file for du_compaction.
# This may be replaced when dependencies are built.
