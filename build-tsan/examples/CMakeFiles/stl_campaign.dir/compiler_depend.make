# Empty compiler generated dependencies file for stl_campaign.
# This may be replaced when dependencies are built.
