file(REMOVE_RECURSE
  "CMakeFiles/stl_campaign.dir/stl_campaign.cpp.o"
  "CMakeFiles/stl_campaign.dir/stl_campaign.cpp.o.d"
  "stl_campaign"
  "stl_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stl_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
