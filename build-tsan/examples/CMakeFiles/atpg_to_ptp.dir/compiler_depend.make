# Empty compiler generated dependencies file for atpg_to_ptp.
# This may be replaced when dependencies are built.
