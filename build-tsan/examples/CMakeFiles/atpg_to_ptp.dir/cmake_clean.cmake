file(REMOVE_RECURSE
  "CMakeFiles/atpg_to_ptp.dir/atpg_to_ptp.cpp.o"
  "CMakeFiles/atpg_to_ptp.dir/atpg_to_ptp.cpp.o.d"
  "atpg_to_ptp"
  "atpg_to_ptp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atpg_to_ptp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
